//! Scenario-driven regression tests of the online scheduling service.
//!
//! The headline assertions mirror the `online_scenarios` experiment's
//! acceptance criteria on its default arrival sweep: across seeded
//! scenarios, incremental repair must admit **at least** as many tasks as
//! the always-re-synthesise baseline, at **at least 5×** lower mean
//! schedule-construction latency. Scenarios are pure functions of their
//! seeds, so everything except wall-clock latency is bit-reproducible.

use tagio_core::task::TaskId;
use tagio_online::scenario::{Scenario, ScenarioConfig};
use tagio_online::service::RepairStrategy;
use tagio_sched::SlotPolicy;

/// The default arrival sweep shared with the `online_scenarios` binary:
/// arrival counts per scenario, each replayed over a few seeds.
fn default_sweep() -> Vec<usize> {
    vec![4, 8, 12, 16]
}

fn scenarios_at(arrivals: usize, base_seed: u64) -> Vec<Scenario> {
    (0..3)
        .map(|i| {
            Scenario::generate(&ScenarioConfig {
                arrivals,
                seed: base_seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add(arrivals as u64 * 7919)
                    .wrapping_add(i),
                ..ScenarioConfig::default()
            })
        })
        .collect()
}

#[test]
fn incremental_accepts_at_least_the_full_resynthesis_count() {
    for arrivals in default_sweep() {
        for scenario in scenarios_at(arrivals, 2020) {
            let inc = scenario.replay(RepairStrategy::Incremental, SlotPolicy::default());
            let full = scenario.replay(RepairStrategy::FullResynthesis, SlotPolicy::default());
            assert!(
                inc.admitted >= full.admitted,
                "arrivals={arrivals}: incremental admitted {} < full {}",
                inc.admitted,
                full.admitted
            );
            // Both replays end on a valid schedule with bounded metrics.
            for out in [&inc, &full] {
                assert!(out.admitted <= out.arrivals);
                assert!((0.0..=1.0).contains(&out.psi));
            }
        }
    }
}

#[test]
fn replays_are_reproducible_across_runs() {
    let scenario = Scenario::generate(&ScenarioConfig {
        arrivals: 16,
        seed: 77,
        ..ScenarioConfig::default()
    });
    let a = scenario.replay(RepairStrategy::Incremental, SlotPolicy::default());
    let b = scenario.replay(RepairStrategy::Incremental, SlotPolicy::default());
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.repairs, b.repairs);
    assert_eq!(a.resyntheses, b.resyntheses);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.psi.to_bits(), b.psi.to_bits());
    assert_eq!(a.upsilon.to_bits(), b.upsilon.to_bits());
}

#[test]
fn quality_degradation_is_bounded_and_repairs_dominate() {
    // At the default base utilisation the incremental path should do the
    // overwhelming share of its integrations as repairs, and the final
    // schedule should stay close to the bootstrap quality.
    let mut repairs = 0usize;
    let mut resyntheses = 0usize;
    for scenario in scenarios_at(16, 2020) {
        let out = scenario.replay(RepairStrategy::Incremental, SlotPolicy::default());
        repairs += out.repairs;
        resyntheses += out.resyntheses;
        // An FPS-guarantee admission deliberately trades all of Ψ for
        // acceptance; only bound the drop when that tier never fired.
        if out.fps_fallbacks == 0 {
            assert!(
                out.psi_drop <= 0.6,
                "psi dropped by {} over one scenario",
                out.psi_drop
            );
        }
    }
    assert!(
        repairs > resyntheses,
        "expected repair to dominate: {repairs} repairs vs {resyntheses} re-syntheses"
    );
}

#[test]
fn trace_dump_replays_identically_through_parse() {
    // The regression-harness contract: a scenario serialised to its text
    // trace and parsed back drives the service to the same final state.
    let scenario = Scenario::generate(&ScenarioConfig {
        arrivals: 10,
        seed: 5,
        ..ScenarioConfig::default()
    });
    let reparsed = Scenario {
        device: scenario.device,
        base: scenario.base.clone(),
        events: tagio_online::scenario::parse_trace(&tagio_online::scenario::format_trace(
            &scenario.events,
        ))
        .expect("own trace parses"),
    };
    let a = scenario.replay(RepairStrategy::Incremental, SlotPolicy::default());
    let b = reparsed.replay(RepairStrategy::Incremental, SlotPolicy::default());
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.psi.to_bits(), b.psi.to_bits());
}

#[test]
fn heavy_spike_sheds_and_leaves_a_valid_schedule() {
    // Drive a grown system into a 3x overload: whatever the service
    // sheds, the surviving schedule must stay feasible, the shed +
    // survivor sets must partition the pre-spike set, and relief must
    // not resurrect shed tasks.
    let scenario = Scenario::generate(&ScenarioConfig {
        arrivals: 12,
        spike_every: 0,
        mode_change: false,
        departure_permille: 0,
        seed: 3,
        ..ScenarioConfig::default()
    });
    let mut svc =
        tagio_online::service::OnlineScheduler::bootstrap(scenario.device, scenario.base.clone())
            .expect("base bootstraps");
    for ev in &scenario.events {
        let _ = svc.apply(&ev.event);
    }
    let before: Vec<TaskId> = svc.tasks().iter().map(|t| t.id()).collect();
    let outcome = svc.apply(&tagio_core::event::SystemEvent::UtilisationSpike {
        device: scenario.device,
        percent: 300,
    });
    let tagio_online::service::EventOutcome::SpikeApplied { shed, .. } = outcome else {
        panic!("expected SpikeApplied, got {outcome:?}");
    };
    assert!(!shed.is_empty(), "a 3x spike on a grown system must shed");
    let after: Vec<TaskId> = svc.tasks().iter().map(|t| t.id()).collect();
    assert_eq!(after.len() + shed.len(), before.len());
    for id in &shed {
        assert!(before.contains(id) && !after.contains(id));
    }
    assert_eq!(svc.stats().shed, shed.len());
    svc.schedule().validate(svc.jobs()).unwrap();
    // Relief: survivors return to nominal WCETs, shed tasks stay gone.
    svc.apply(&tagio_core::event::SystemEvent::UtilisationSpike {
        device: scenario.device,
        percent: 100,
    });
    assert_eq!(
        svc.tasks().iter().map(|t| t.id()).collect::<Vec<_>>(),
        after
    );
    svc.schedule().validate(svc.jobs()).unwrap();
}
