//! The pinned multi-tenant isolation property.
//!
//! One tenant's overload must not reduce another tenant's under-quota
//! guaranteed acceptance. The fleet router enforces this structurally:
//! a best-effort arrival that fails its quota (or deficit) gate is
//! rejected in sequential staging, *before* the routing RNG draws or
//! any partition is consulted — so a fully-gated aggressor leaves zero
//! trace on the rest of the fleet. This suite pins the strongest form
//! of that claim, bit-exactly and deterministically: a sweep with an
//! overloading best-effort aggressor produces, for every guaranteed
//! tenant, the *identical* acceptance counters, schedules, quality
//! metrics and router RNG state as the same sweep with the aggressor's
//! traffic deleted from the trace — at pool widths 1 and 4.

use std::collections::BTreeMap;
use tagio_core::event::SystemEvent;
use tagio_core::task::{DeviceId, IoTask, TaskId, TaskSet, TenantId};
use tagio_core::time::Duration;
use tagio_online::fleet::{FleetConfig, FleetScheduler};
use tagio_online::tenant::{TenantCounters, TenantRegistry, TenantSpec, PPM};

const DEVICES: u32 = 4;
const AGGRESSOR: TenantId = TenantId(1);
const GUARANTEED: [u32; 3] = [2, 3, 4];

fn task(id: u32, device: u32, tenant: TenantId, wcet_us: u64, period_ms: u64) -> IoTask {
    let period = Duration::from_millis(period_ms);
    IoTask::builder(TaskId(id), DeviceId(device % DEVICES))
        .wcet(Duration::from_micros(wcet_us))
        .period(period)
        .ideal_offset(period / 2)
        .margin(period / 4)
        .quality(f64::from(id % 5) + 1.0, 0.25)
        .tenant(tenant)
        .build()
        .expect("test parameters are valid")
}

/// Tenant 1 is the aggressor: best-effort with a zero quota, so every
/// one of its arrivals overloads its contract. Tenants 2..=4 hold
/// generous guaranteed quotas and stay far under them.
fn registry() -> TenantRegistry {
    let mut r = TenantRegistry::new();
    r.register(AGGRESSOR, TenantSpec::best_effort(0));
    for &t in &GUARANTEED {
        r.register(TenantId(t), TenantSpec::guaranteed(PPM));
    }
    r
}

/// A deterministic interleaved sweep: each step offers one aggressor
/// arrival (heavy — ~12.5% of a partition each) wedged between two
/// guaranteed arrivals, spread round-robin over tenants and devices.
fn sweep() -> Vec<SystemEvent> {
    let mut events = Vec::new();
    for k in 0..24u32 {
        let tenant = TenantId(GUARANTEED[(k as usize) % GUARANTEED.len()]);
        events.push(SystemEvent::Arrival(task(k, k, tenant, 300, 8)));
        events.push(SystemEvent::Arrival(task(
            1_000 + k,
            k + 1,
            AGGRESSOR,
            1_000,
            8,
        )));
        let tenant = TenantId(GUARANTEED[((k + 1) as usize) % GUARANTEED.len()]);
        events.push(SystemEvent::Arrival(task(
            2_000 + k,
            k + 2,
            tenant,
            250,
            16,
        )));
    }
    events
}

struct RunResult {
    guaranteed: BTreeMap<TenantId, TenantCounters>,
    schedules: Vec<Vec<tagio_core::schedule::ScheduleEntry>>,
    psi_bits: Vec<u64>,
    rng_state: [u64; 4],
}

/// Replays `events` one event per epoch (batch = 1, so each arrival's
/// admission is judged in isolation) on a fresh fleet at `threads`.
fn run(events: &[SystemEvent], threads: usize) -> RunResult {
    let mut bases = BTreeMap::new();
    for d in 0..DEVICES {
        bases.insert(DeviceId(d), TaskSet::default());
    }
    let mut fleet = FleetScheduler::bootstrap(
        &bases,
        FleetConfig {
            threads,
            retries: 2,
            seed: 11,
            tenants: registry(),
            ..FleetConfig::default()
        },
    );
    for e in events {
        let _ = fleet.apply(e);
    }
    let rng_state = fleet.snapshot().rng_state;
    RunResult {
        guaranteed: fleet
            .stats()
            .tenants
            .iter()
            .filter(|(t, _)| **t != AGGRESSOR)
            .map(|(t, c)| (*t, *c))
            .collect(),
        schedules: fleet
            .partitions()
            .iter()
            .map(|p| p.schedule().as_slice().to_vec())
            .collect(),
        psi_bits: fleet
            .partitions()
            .iter()
            .map(|p| p.psi().to_bits())
            .collect(),
        rng_state,
    }
}

#[test]
fn aggressor_overload_cannot_touch_guaranteed_acceptance() {
    let full = sweep();
    let clean: Vec<SystemEvent> = full
        .iter()
        .filter(|e| match e {
            SystemEvent::Arrival(t) => t.tenant() != AGGRESSOR,
            _ => true,
        })
        .cloned()
        .collect();
    assert!(
        clean.len() < full.len(),
        "the sweep carries aggressor traffic"
    );

    for threads in [1usize, 4] {
        let with = run(&full, threads);
        let without = run(&clean, threads);
        assert_eq!(
            with.guaranteed, without.guaranteed,
            "guaranteed tenants' counters moved under aggressor overload (threads={threads})"
        );
        assert_eq!(
            with.schedules, without.schedules,
            "schedules diverged under aggressor overload (threads={threads})"
        );
        assert_eq!(
            with.psi_bits, without.psi_bits,
            "quality bits diverged under aggressor overload (threads={threads})"
        );
        assert_eq!(
            with.rng_state, without.rng_state,
            "the gated aggressor drew routing randomness (threads={threads})"
        );
        // The property is not vacuous: guaranteed work was admitted and
        // the aggressor was actually refused.
        let admitted: usize = with.guaranteed.values().map(|c| c.admitted).sum();
        assert!(admitted > 0, "no guaranteed admissions (threads={threads})");
    }

    // And the aggressor really was gated at the router, not absorbed.
    let with = {
        let mut bases = BTreeMap::new();
        for d in 0..DEVICES {
            bases.insert(DeviceId(d), TaskSet::default());
        }
        let mut fleet = FleetScheduler::bootstrap(
            &bases,
            FleetConfig {
                threads: 1,
                retries: 2,
                seed: 11,
                tenants: registry(),
                ..FleetConfig::default()
            },
        );
        for e in &full {
            let _ = fleet.apply(e);
        }
        fleet.stats().tenants[&AGGRESSOR]
    };
    assert_eq!(with.admitted, 0, "a zero quota admits nothing");
    assert_eq!(with.arrivals, 24);
    assert_eq!(with.rejected, 24);
}
