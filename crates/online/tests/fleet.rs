//! Fleet-level regression tests: thread-count determinism, cross-
//! partition retry monotonicity, and the scaling headline — a fleet
//! admits at least as much as a single partition offered the same
//! aggregate load.
//!
//! Everything here is a pure function of the scenario seeds (wall-clock
//! latencies are deliberately excluded from every comparison).

use tagio_online::fleet::{FleetConfig, FleetScheduler, PlacementPolicy};
use tagio_online::scenario::{FleetScenario, FleetScenarioConfig};
use tagio_online::service::OnlineStats;

/// The default fleet sweep shared with the `fleet_scenarios` binary:
/// (partitions, arrivals) per scenario.
fn default_sweep() -> Vec<(u32, usize)> {
    vec![(2, 8), (2, 16), (4, 16), (4, 32)]
}

fn scenarios_at(partitions: u32, arrivals: usize, base_seed: u64) -> Vec<FleetScenario> {
    (0..2)
        .map(|i| {
            FleetScenario::generate(&FleetScenarioConfig {
                partitions,
                arrivals,
                seed: base_seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add(arrivals as u64 * 7919)
                    .wrapping_add(u64::from(partitions) * 104_729)
                    .wrapping_add(i),
                ..FleetScenarioConfig::default()
            })
        })
        .collect()
}

/// The deterministic slice of [`OnlineStats`] (wall-clock fields out).
fn deterministic_stats(stats: &OnlineStats) -> impl PartialEq + std::fmt::Debug {
    (
        (stats.arrivals, stats.admitted, stats.rejected),
        (stats.fast_rejects, stats.reject_causes.clone()),
        (stats.repairs, stats.resyntheses, stats.fps_fallbacks),
        (stats.shed, stats.shed_overload, stats.shed_infeasible),
        (stats.departures, stats.mode_changes, stats.spikes),
        (stats.repair_events, stats.admission_events),
    )
}

/// Replays `scenario` and returns the fleet for post-mortem inspection.
fn run(scenario: &FleetScenario, config: FleetConfig, batch: usize) -> FleetScheduler {
    let mut fleet = FleetScheduler::bootstrap(&scenario.bases, config);
    let stream: Vec<_> = scenario.events.iter().map(|e| e.event.clone()).collect();
    for chunk in stream.chunks(batch) {
        let _ = fleet.apply_batch(chunk);
    }
    fleet
}

#[test]
fn thread_count_never_changes_schedules_or_stats() {
    for policy in PlacementPolicy::ALL {
        for (partitions, arrivals) in default_sweep() {
            for scenario in scenarios_at(partitions, arrivals, 2020) {
                let config = |threads| FleetConfig {
                    policy,
                    threads,
                    ..FleetConfig::default()
                };
                let serial = run(&scenario, config(1), 4);
                let wide = run(&scenario, config(4), 4);
                // Fleet counters are bit-identical...
                assert_eq!(serial.stats(), wide.stats(), "policy {policy}");
                // ...and so is every partition: schedule and stats.
                for (a, b) in serial.partitions().iter().zip(wide.partitions()) {
                    assert_eq!(a.device(), b.device());
                    assert_eq!(
                        a.schedule(),
                        b.schedule(),
                        "policy {policy}, partition {:?}",
                        a.device()
                    );
                    assert_eq!(a.tasks().len(), b.tasks().len());
                    assert_eq!(
                        deterministic_stats(a.stats()),
                        deterministic_stats(b.stats())
                    );
                    assert_eq!(a.psi().to_bits(), b.psi().to_bits());
                    assert_eq!(a.upsilon().to_bits(), b.upsilon().to_bits());
                }
            }
        }
    }
}

#[test]
fn cross_partition_retry_never_reduces_acceptance() {
    for (partitions, arrivals) in default_sweep() {
        for scenario in scenarios_at(partitions, arrivals, 77) {
            let config = |retries| FleetConfig {
                policy: PlacementPolicy::FirstFit,
                retries,
                threads: 1,
                ..FleetConfig::default()
            };
            let without = run(&scenario, config(0), 4);
            let with = run(&scenario, config(partitions as usize), 4);
            assert!(
                with.stats().admitted >= without.stats().admitted,
                "partitions={partitions} arrivals={arrivals}: retry admitted {} < {}",
                with.stats().admitted,
                without.stats().admitted,
            );
            assert_eq!(with.stats().arrivals, without.stats().arrivals);
        }
    }
}

#[test]
fn fleet_accepts_at_least_the_single_partition_baseline() {
    // The scaling headline: at equal aggregate load (identical event
    // stream, identical base task sets) a multi-partition fleet admits
    // at least as many arrivals as one partition holding everything.
    for (partitions, arrivals) in default_sweep() {
        for scenario in scenarios_at(partitions, arrivals, 2020) {
            let config = FleetConfig {
                policy: PlacementPolicy::BestFit,
                threads: 1,
                ..FleetConfig::default()
            };
            let fleet = run(&scenario, config.clone(), 4);
            let single = run(&scenario.collapsed(), config, 4);
            assert_eq!(fleet.stats().arrivals, single.stats().arrivals);
            assert!(
                fleet.stats().admitted >= single.stats().admitted,
                "partitions={partitions} arrivals={arrivals}: fleet {} < single {}",
                fleet.stats().admitted,
                single.stats().admitted,
            );
        }
    }
}

#[test]
fn skewed_traffic_benefits_from_load_spreading_policies() {
    // Under a fully-skewed arrival stream the affinity policy piles work
    // on the hot device; the spreading policies must do no worse.
    let scenario = FleetScenario::generate(&FleetScenarioConfig {
        partitions: 4,
        arrivals: 24,
        skew: 1.0,
        base_utilisation: 0.5,
        seed: 11,
        ..FleetScenarioConfig::default()
    });
    let admitted = |policy| {
        let fleet = run(
            &scenario,
            FleetConfig {
                policy,
                retries: 0,
                threads: 1,
                ..FleetConfig::default()
            },
            4,
        );
        fleet.stats().admitted
    };
    assert!(admitted(PlacementPolicy::BestFit) >= admitted(PlacementPolicy::FirstFit));
    assert!(admitted(PlacementPolicy::Rebalance) >= admitted(PlacementPolicy::FirstFit));
}

#[test]
fn batch_size_one_matches_whole_stream_epochs_on_admissions() {
    // Batching granularity may shift *which* partition sees an arrival
    // first (routing snapshots are per epoch), but the pipeline itself
    // must stay deterministic for a fixed batch size.
    let scenario = FleetScenario::generate(&FleetScenarioConfig {
        partitions: 2,
        arrivals: 12,
        seed: 5,
        ..FleetScenarioConfig::default()
    });
    let config = FleetConfig {
        threads: 1,
        ..FleetConfig::default()
    };
    let a = run(&scenario, config.clone(), 3);
    let b = run(&scenario, config, 3);
    assert_eq!(a.stats(), b.stats());
    for (x, y) in a.partitions().iter().zip(b.partitions()) {
        assert_eq!(x.schedule(), y.schedule());
    }
}
