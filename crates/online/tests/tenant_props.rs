//! Property-based contracts of the multi-tenant service tier.
//!
//! Three invariants, each driven by random tenant-tagged traces:
//!
//! 1. **Isolation** — a best-effort aggressor with a zero quota cannot
//!    perturb any guaranteed tenant's acceptance counters, however its
//!    traffic interleaves with theirs (the randomised companion to the
//!    bit-exact sweep in `tenant_isolation.rs`).
//! 2. **Conservation** — per-tenant arrival/admission/rejection counters
//!    partition the fleet totals exactly when every arrival is tagged.
//! 3. **Pool-width neutrality** — tenant gating runs in sequential
//!    staging, so worker-pool width stays a pure throughput knob for
//!    tenant-tagged runs too: outcomes, stats and schedules are
//!    bit-identical across widths.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use tagio_core::event::SystemEvent;
use tagio_core::task::{DeviceId, IoTask, Priority, TaskId, TaskSet, TenantId};
use tagio_core::time::Duration;
use tagio_online::fleet::{FleetConfig, FleetScheduler};
use tagio_online::tenant::{TenantRegistry, TenantSpec, PPM};

const DEVICES: u32 = 3;
const AGGRESSOR: TenantId = TenantId(1);

fn tenant_task(id: u32, device: u32, tenant: u32, period_ix: usize, wcet_permille: u64) -> IoTask {
    let periods_ms = [4u64, 8, 8, 16];
    let period = Duration::from_millis(periods_ms[period_ix % periods_ms.len()]);
    let wcet =
        Duration::from_micros((period.as_micros() * wcet_permille.clamp(1, 240) / 1000).max(1));
    IoTask::builder(TaskId(id), DeviceId(device % DEVICES))
        .wcet(wcet)
        .period(period)
        .ideal_offset(period / 2)
        .margin(period / 4)
        .priority(Priority(id % 3))
        .quality(f64::from(id % 7) + 1.0, 0.25)
        .tenant(TenantId(tenant))
        .build()
        .expect("drawn parameters are valid")
}

fn registry(guaranteed: &[u32]) -> TenantRegistry {
    let mut r = TenantRegistry::new();
    r.register(AGGRESSOR, TenantSpec::best_effort(0));
    for &t in guaranteed {
        r.register(TenantId(t), TenantSpec::guaranteed(PPM));
    }
    r
}

fn fleet_with(registry: TenantRegistry, threads: usize) -> FleetScheduler {
    let mut bases = BTreeMap::new();
    for d in 0..DEVICES {
        bases.insert(DeviceId(d), TaskSet::default());
    }
    FleetScheduler::bootstrap(
        &bases,
        FleetConfig {
            threads,
            retries: 2,
            seed: 5,
            tenants: registry,
            ..FleetConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// However aggressor traffic interleaves with guaranteed traffic,
    /// deleting it from the trace leaves every guaranteed tenant's
    /// counters, the partition schedules, and the quality bits exactly
    /// where they were.
    #[test]
    fn guaranteed_acceptance_is_independent_of_aggressor_overload(
        trace in vec((0u32..2, 0u32..DEVICES, 0usize..4, 20u64..200), 4..40),
    ) {
        // Slot 0 draws an aggressor arrival, slot 1 a guaranteed one
        // (tenants 2 and 3 alternating by index).
        let full: Vec<SystemEvent> = trace
            .iter()
            .enumerate()
            .map(|(i, &(kind, device, period_ix, wcet))| {
                let (id, tenant) = if kind == 0 {
                    (1_000 + i as u32, 1)
                } else {
                    (i as u32, 2 + (i as u32 % 2))
                };
                SystemEvent::Arrival(tenant_task(id, device, tenant, period_ix, wcet))
            })
            .collect();
        let clean: Vec<SystemEvent> = full
            .iter()
            .filter(|e| !matches!(e, SystemEvent::Arrival(t) if t.tenant() == AGGRESSOR))
            .cloned()
            .collect();
        let mut with = fleet_with(registry(&[2, 3]), 1);
        let mut without = fleet_with(registry(&[2, 3]), 1);
        for e in &full {
            let _ = with.apply(e);
        }
        for e in &clean {
            let _ = without.apply(e);
        }
        for t in [TenantId(2), TenantId(3)] {
            prop_assert_eq!(
                with.stats().tenants.get(&t),
                without.stats().tenants.get(&t),
                "counters moved for {:?}", t
            );
        }
        for (a, b) in with.partitions().iter().zip(without.partitions()) {
            prop_assert_eq!(a.schedule(), b.schedule());
            prop_assert_eq!(a.psi().to_bits(), b.psi().to_bits());
        }
    }

    /// With every arrival tagged, the per-tenant counters are an exact
    /// partition of the fleet's arrival/admission/rejection totals.
    #[test]
    fn tenant_counters_partition_the_fleet_totals(
        trace in vec((1u32..4, 0u32..DEVICES, 0usize..4, 20u64..200), 1..40),
    ) {
        let mut registry = TenantRegistry::new();
        registry.register(TenantId(1), TenantSpec::best_effort(250_000));
        registry.register(TenantId(2), TenantSpec::guaranteed(PPM));
        registry.register(TenantId(3), TenantSpec::guaranteed(500_000));
        let mut fleet = fleet_with(registry, 1);
        let events: Vec<SystemEvent> = trace
            .iter()
            .enumerate()
            .map(|(i, &(tenant, device, period_ix, wcet))| {
                SystemEvent::Arrival(tenant_task(i as u32, device, tenant, period_ix, wcet))
            })
            .collect();
        // Mixed batch sizes so staging, retry waves and the wave-offer
        // accounting all contribute to the counters under test.
        for chunk in events.chunks(3) {
            let _ = fleet.apply_batch(chunk);
        }
        let stats = fleet.stats();
        let sum = |f: fn(&tagio_online::tenant::TenantCounters) -> usize| -> usize {
            stats.tenants.values().map(f).sum()
        };
        prop_assert_eq!(sum(|c| c.arrivals), stats.arrivals, "arrivals partition");
        prop_assert_eq!(sum(|c| c.admitted), stats.admitted, "admissions partition");
        prop_assert_eq!(sum(|c| c.rejected), stats.rejected, "rejections partition");
    }

    /// Tenant-tagged runs stay bit-identical across pool widths.
    #[test]
    fn tenant_gating_is_pool_width_neutral(
        trace in vec((1u32..4, 0u32..DEVICES, 0usize..4, 20u64..200), 1..32),
    ) {
        let mk_registry = || {
            let mut r = TenantRegistry::new();
            r.register(TenantId(1), TenantSpec::best_effort(150_000).with_weight(2));
            r.register(TenantId(2), TenantSpec::guaranteed(PPM));
            r.register(TenantId(3), TenantSpec::best_effort(400_000));
            r
        };
        let events: Vec<SystemEvent> = trace
            .iter()
            .enumerate()
            .map(|(i, &(tenant, device, period_ix, wcet))| {
                SystemEvent::Arrival(tenant_task(i as u32, device, tenant, period_ix, wcet))
            })
            .collect();
        let mut reference = fleet_with(mk_registry(), 1);
        let mut wide = fleet_with(mk_registry(), 4);
        for chunk in events.chunks(4) {
            let _ = reference.apply_batch(chunk);
            let _ = wide.apply_batch(chunk);
            prop_assert_eq!(reference.stats(), wide.stats(), "stats diverged");
            for (a, b) in reference.partitions().iter().zip(wide.partitions()) {
                prop_assert_eq!(a.schedule(), b.schedule(), "schedule diverged");
            }
        }
        // (Snapshots differ only in the `threads` config knob, so the
        // deficit ledger is the right end-of-run state to pin.)
        prop_assert_eq!(reference.ledger(), wide.ledger(), "ledger diverged");
    }
}
