//! Quality curves for timed I/O operations (paper Fig. 1).
//!
//! A job executed exactly at its ideal start instant yields the maximum
//! quality `Vmax`. Within the timing boundary `[δ − θ, δ + θ]` the quality
//! decays with the distance from the ideal instant; outside the boundary —
//! but still before the deadline — the minimum quality `Vmin` is obtained.
//!
//! The paper notes the exact shape is application-dependent and evaluates a
//! common *linear* curve; [`QualityCurve`] therefore offers the linear shape
//! plus a step shape (useful for modelling systems where late I/O has no
//! residual value) and exposes the shape as data so downstream users can
//! serialise task sets.

use crate::time::{Duration, Time};
use serde::{Deserialize, Serialize};

/// The decay shape between the ideal instant and the window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QualityShape {
    /// Linear decay from `Vmax` at the ideal instant to `Vmin` at distance
    /// `θ` (the paper's evaluated shape).
    #[default]
    Linear,
    /// `Vmax` anywhere inside the window, `Vmin` outside (all-or-nothing).
    Step,
}

/// A quality curve `V(t)` anchored at a job's ideal start instant.
///
/// ```
/// use tagio_core::quality::QualityCurve;
/// use tagio_core::time::{Time, Duration};
///
/// let curve = QualityCurve::linear(5.0, 1.0);
/// let ideal = Time::from_millis(10);
/// let theta = Duration::from_millis(2);
/// assert_eq!(curve.value(ideal, theta, ideal), 5.0);            // exact
/// assert_eq!(curve.value(ideal, theta, ideal + theta), 1.0);    // boundary
/// assert_eq!(curve.value(ideal, theta, ideal + theta * 2), 1.0);// outside
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityCurve {
    shape: QualityShape,
    vmax: f64,
    vmin: f64,
}

impl QualityCurve {
    /// A linear curve with the given extrema.
    ///
    /// # Panics
    /// Panics if the extrema are not finite or `vmax < vmin`.
    #[must_use]
    pub fn linear(vmax: f64, vmin: f64) -> Self {
        Self::with_shape(QualityShape::Linear, vmax, vmin)
    }

    /// A step curve with the given extrema.
    ///
    /// # Panics
    /// Panics if the extrema are not finite or `vmax < vmin`.
    #[must_use]
    pub fn step(vmax: f64, vmin: f64) -> Self {
        Self::with_shape(QualityShape::Step, vmax, vmin)
    }

    /// A curve with an explicit shape.
    ///
    /// # Panics
    /// Panics if the extrema are not finite or `vmax < vmin`.
    #[must_use]
    pub fn with_shape(shape: QualityShape, vmax: f64, vmin: f64) -> Self {
        assert!(
            vmax.is_finite() && vmin.is_finite() && vmax >= vmin,
            "quality extrema must be finite with vmax >= vmin"
        );
        QualityCurve { shape, vmax, vmin }
    }

    /// The decay shape.
    #[must_use]
    pub fn shape(&self) -> QualityShape {
        self.shape
    }

    /// Maximum quality (at the ideal instant).
    #[must_use]
    pub fn vmax(&self) -> f64 {
        self.vmax
    }

    /// Minimum quality (outside the window, before the deadline).
    #[must_use]
    pub fn vmin(&self) -> f64 {
        self.vmin
    }

    /// Evaluates the curve for a job with ideal start `ideal` and margin
    /// `theta`, executed at `start`.
    ///
    /// A zero margin degenerates to: `Vmax` exactly at the ideal instant,
    /// `Vmin` everywhere else.
    #[must_use]
    pub fn value(&self, ideal: Time, theta: Duration, start: Time) -> f64 {
        let dist = start.abs_diff(ideal);
        if dist.is_zero() {
            return self.vmax;
        }
        if dist >= theta {
            return self.vmin;
        }
        match self.shape {
            QualityShape::Step => self.vmax,
            QualityShape::Linear => {
                let frac = dist.as_micros() as f64 / theta.as_micros() as f64;
                self.vmax - (self.vmax - self.vmin) * frac
            }
        }
    }

    /// Normalised value in `[0, 1]` (1 at the ideal instant). Returns 1.0
    /// for a degenerate curve with `vmax == vmin`.
    #[must_use]
    pub fn normalised(&self, ideal: Time, theta: Duration, start: Time) -> f64 {
        if self.vmax == self.vmin {
            return 1.0;
        }
        (self.value(ideal, theta, start) - self.vmin) / (self.vmax - self.vmin)
    }
}

impl Default for QualityCurve {
    /// A unit linear curve (`Vmax = 1`, `Vmin = 0`).
    fn default() -> Self {
        QualityCurve::linear(1.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDEAL: Time = Time::from_millis(10);
    const THETA: Duration = Duration::from_millis(2);

    #[test]
    fn linear_interpolates_midpoint() {
        let c = QualityCurve::linear(4.0, 2.0);
        let halfway = IDEAL + Duration::from_millis(1);
        assert!((c.value(IDEAL, THETA, halfway) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_is_symmetric() {
        let c = QualityCurve::linear(4.0, 2.0);
        let d = Duration::from_micros(777);
        assert_eq!(
            c.value(IDEAL, THETA, IDEAL + d),
            c.value(IDEAL, THETA, IDEAL - d)
        );
    }

    #[test]
    fn boundary_yields_vmin() {
        let c = QualityCurve::linear(4.0, 2.0);
        assert_eq!(c.value(IDEAL, THETA, IDEAL + THETA), 2.0);
        assert_eq!(c.value(IDEAL, THETA, IDEAL - THETA), 2.0);
    }

    #[test]
    fn outside_window_yields_vmin() {
        let c = QualityCurve::linear(4.0, 2.0);
        assert_eq!(c.value(IDEAL, THETA, IDEAL + THETA * 3), 2.0);
    }

    #[test]
    fn step_keeps_vmax_inside_window() {
        let c = QualityCurve::step(4.0, 2.0);
        assert_eq!(
            c.value(IDEAL, THETA, IDEAL + Duration::from_micros(1_999)),
            4.0
        );
        assert_eq!(c.value(IDEAL, THETA, IDEAL + THETA), 2.0);
    }

    #[test]
    fn zero_margin_is_exact_or_min() {
        let c = QualityCurve::linear(4.0, 2.0);
        assert_eq!(c.value(IDEAL, Duration::ZERO, IDEAL), 4.0);
        assert_eq!(
            c.value(IDEAL, Duration::ZERO, IDEAL + Duration::from_micros(1)),
            2.0
        );
    }

    #[test]
    fn normalised_spans_unit_interval() {
        let c = QualityCurve::linear(5.0, 1.0);
        assert_eq!(c.normalised(IDEAL, THETA, IDEAL), 1.0);
        assert_eq!(c.normalised(IDEAL, THETA, IDEAL + THETA), 0.0);
        let mid = c.normalised(IDEAL, THETA, IDEAL + Duration::from_millis(1));
        assert!((mid - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_curve_normalises_to_one() {
        let c = QualityCurve::linear(3.0, 3.0);
        assert_eq!(c.normalised(IDEAL, THETA, IDEAL + THETA * 5), 1.0);
    }

    #[test]
    #[should_panic(expected = "vmax >= vmin")]
    fn inverted_extrema_panic() {
        let _ = QualityCurve::linear(1.0, 2.0);
    }

    #[test]
    fn negative_vmin_penalty_supported() {
        // Safety-critical systems may use a large penalty value (footnote 1).
        let c = QualityCurve::linear(5.0, -1000.0);
        assert_eq!(c.value(IDEAL, THETA, IDEAL + THETA * 2), -1000.0);
    }
}
