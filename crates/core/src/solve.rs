//! The shared vocabulary of the unified solving API: structured
//! infeasibility diagnostics ([`Infeasible`]) and per-call solver
//! contexts ([`SolverCtx`]).
//!
//! Every scheduling method in the workspace reports failure as an
//! [`Infeasible`] value instead of a bare `None`: *why* it failed
//! ([`InfeasibleCause`]), *where* (the offending task/job ids), and *how
//! close it got* (the best partial Ψ/Υ achieved before giving up). The
//! [`SolverCtx`] travels with each solve call and carries the
//! deterministic seed, the time/iteration budget, a cooperative
//! cancellation flag and the thread configuration — per-call knobs that
//! used to be baked into scheduler constructors.

use crate::job::JobId;
use crate::task::{DeviceId, TaskId};
use core::fmt;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solve produced no feasible schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InfeasibleCause {
    /// The set's execution demand exceeds the device capacity over the
    /// scheduling horizon — no method can ever succeed.
    UtilisationOverload,
    /// A job missed its deadline under the method's dispatch/blocking
    /// model (non-preemptive FPS/EDF simulation, FIFO head-of-line
    /// blocking, response-time bound).
    BlockingBound,
    /// The slot allocator (LCC-D, repair, reconfiguration) found no
    /// feasible slot for some job without displacing committed work.
    NoFeasibleSlot,
    /// The solver's time/iteration budget expired before any feasible
    /// schedule was found; the diagnostic carries the best partial
    /// result reached.
    BudgetExhausted,
    /// Cooperative cancellation was requested before a feasible schedule
    /// was found.
    Cancelled,
}

impl InfeasibleCause {
    /// Every cause, in declaration order.
    pub const ALL: [InfeasibleCause; 5] = [
        InfeasibleCause::UtilisationOverload,
        InfeasibleCause::BlockingBound,
        InfeasibleCause::NoFeasibleSlot,
        InfeasibleCause::BudgetExhausted,
        InfeasibleCause::Cancelled,
    ];

    /// Stable kebab-case identifier (used in reports and JSON output).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            InfeasibleCause::UtilisationOverload => "utilisation-overload",
            InfeasibleCause::BlockingBound => "blocking-bound",
            InfeasibleCause::NoFeasibleSlot => "no-feasible-slot",
            InfeasibleCause::BudgetExhausted => "budget-exhausted",
            InfeasibleCause::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for InfeasibleCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl core::str::FromStr for InfeasibleCause {
    type Err = String;

    /// Parses the identifier [`InfeasibleCause::as_str`] emits (snapshot
    /// and report round-trips).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        InfeasibleCause::ALL
            .into_iter()
            .find(|c| c.as_str() == s.trim())
            .ok_or_else(|| format!("unknown infeasibility cause `{s}`"))
    }
}

/// A structured infeasibility diagnostic: the typed error of every solve
/// call in the workspace (`Result<Schedule, Infeasible>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Infeasible {
    /// The failure class.
    pub cause: InfeasibleCause,
    /// Offending tasks (deduplicated, sorted). For an overload this is
    /// every contributing task, heaviest first; for a placement failure
    /// the tasks of the unplaceable jobs.
    pub tasks: Vec<TaskId>,
    /// Offending jobs (deduplicated, sorted): the jobs that missed their
    /// deadline, found no slot, or were still unplaced when the budget
    /// expired.
    pub jobs: Vec<JobId>,
    /// Best partial Ψ achieved before giving up (exact jobs among the
    /// placements committed so far), when the method measured one.
    pub best_psi: Option<f64>,
    /// Best partial Υ achieved before giving up, when measured.
    pub best_upsilon: Option<f64>,
    /// The partition whose loss orphaned the offending tasks, when the
    /// diagnostic stems from a failover (a `PartitionDeath` whose tasks
    /// could not all be rehomed). `None` for ordinary solve failures.
    pub origin: Option<DeviceId>,
}

impl Infeasible {
    /// A bare diagnostic with no location or partial-result detail.
    #[must_use]
    pub fn new(cause: InfeasibleCause) -> Self {
        Infeasible {
            cause,
            tasks: Vec::new(),
            jobs: Vec::new(),
            best_psi: None,
            best_upsilon: None,
            origin: None,
        }
    }

    /// Attaches offending jobs (their tasks are derived automatically);
    /// both lists are deduplicated and sorted.
    #[must_use]
    pub fn with_jobs(mut self, jobs: impl IntoIterator<Item = JobId>) -> Self {
        for job in jobs {
            self.jobs.push(job);
            self.tasks.push(job.task);
        }
        self.jobs.sort_unstable();
        self.jobs.dedup();
        self.tasks.sort_unstable();
        self.tasks.dedup();
        self
    }

    /// Attaches offending tasks, *preserving the given order* (overload
    /// diagnostics list contributors heaviest first). Duplicates are
    /// removed, first occurrence wins.
    #[must_use]
    pub fn with_tasks(mut self, tasks: impl IntoIterator<Item = TaskId>) -> Self {
        for task in tasks {
            if !self.tasks.contains(&task) {
                self.tasks.push(task);
            }
        }
        self
    }

    /// Records the best partial Ψ/Υ reached before the method gave up.
    #[must_use]
    pub fn with_partial(mut self, psi: f64, upsilon: f64) -> Self {
        self.best_psi = Some(psi);
        self.best_upsilon = Some(upsilon);
        self
    }

    /// Records the partition whose death orphaned the offending tasks
    /// (failover diagnostics name the lane that was lost).
    #[must_use]
    pub fn with_origin(mut self, origin: DeviceId) -> Self {
        self.origin = Some(origin);
        self
    }

    /// `true` when the diagnostic carries any detail beyond the cause
    /// (offending ids, a partial result, or a failover origin).
    #[must_use]
    pub fn is_populated(&self) -> bool {
        !self.tasks.is_empty()
            || !self.jobs.is_empty()
            || self.best_psi.is_some()
            || self.best_upsilon.is_some()
            || self.origin.is_some()
    }
}

impl fmt::Display for Infeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "infeasible ({})", self.cause)?;
        if !self.tasks.is_empty() {
            write!(f, "; tasks ")?;
            for (i, t) in self.tasks.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if !self.jobs.is_empty() {
            write!(f, "; jobs ")?;
            for (i, j) in self.jobs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{j}")?;
            }
        }
        if let (Some(p), Some(u)) = (self.best_psi, self.best_upsilon) {
            write!(f, "; best partial psi={p:.3} upsilon={u:.3}")?;
        }
        if let Some(origin) = self.origin {
            write!(f, "; orphaned by death of {origin}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Infeasible {}

/// Per-call solver context: deterministic seed, time/iteration budget,
/// cooperative cancellation and thread configuration.
///
/// A default context is unlimited, unseeded and leaves the thread count
/// unset: every solver falls back to its own constructor-time defaults
/// for anything the context does not specify.
///
/// ```
/// use tagio_core::solve::SolverCtx;
/// let ctx = SolverCtx::new().with_seed(7).with_iteration_budget(100);
/// assert_eq!(ctx.seed_or(0), 7);
/// let mut budget = ctx.budget();
/// assert!(budget.spend(100).is_ok());
/// assert!(budget.spend(1).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolverCtx {
    seed: Option<u64>,
    time_budget: Option<Duration>,
    iteration_budget: Option<u64>,
    threads: Option<usize>,
    cancel: Option<Arc<AtomicBool>>,
}

impl SolverCtx {
    /// An unlimited, unseeded context.
    #[must_use]
    pub fn new() -> Self {
        SolverCtx::default()
    }

    /// A context with only a deterministic seed set.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        SolverCtx::new().with_seed(seed)
    }

    /// Sets the deterministic RNG seed for this call. Randomised solvers
    /// must be bit-identical across runs for a fixed seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets a wall-clock budget. Anytime solvers stop refining when it
    /// expires and return the best feasible schedule found so far, or an
    /// [`InfeasibleCause::BudgetExhausted`] diagnostic when none was.
    #[must_use]
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets an iteration budget in solver-defined units (GA generations,
    /// branch-and-bound nodes, repair escalation tiers).
    #[must_use]
    pub fn with_iteration_budget(mut self, iterations: u64) -> Self {
        self.iteration_budget = Some(iterations);
        self
    }

    /// Sets the worker-thread count for solvers with parallel phases
    /// (`0` = all available cores).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attaches a cooperative cancellation flag; solvers poll it at
    /// checkpoint boundaries and return [`InfeasibleCause::Cancelled`]
    /// (or their best feasible result so far) once it is raised.
    #[must_use]
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// The seed, if one was set for this call.
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// The seed, or `default` when the context leaves it unset (solvers
    /// pass their constructor-time seed here).
    #[must_use]
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The thread override, if one was set.
    #[must_use]
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// `true` when the cancellation flag is raised.
    #[must_use]
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// `true` when any time or iteration budget is set.
    #[must_use]
    pub fn is_budgeted(&self) -> bool {
        self.time_budget.is_some() || self.iteration_budget.is_some()
    }

    /// Starts metering this context's budget for one solve call.
    /// The wall-clock budget begins counting *now*.
    #[must_use]
    pub fn budget(&self) -> SolveBudget {
        SolveBudget {
            deadline: self.time_budget.map(|d| Instant::now() + d),
            iterations_left: self.iteration_budget,
            cancel: self.cancel.clone(),
        }
    }
}

/// A running budget meter for one solve call (see [`SolverCtx::budget`]).
///
/// Solvers call [`SolveBudget::spend`] at checkpoint boundaries; the
/// first `Err` tells them to stop and report (or return their best
/// feasible result so far, for anytime solvers).
#[derive(Debug, Clone)]
pub struct SolveBudget {
    deadline: Option<Instant>,
    iterations_left: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
}

impl SolveBudget {
    /// A meter that never exhausts (the default-context behaviour).
    #[must_use]
    pub fn unlimited() -> Self {
        SolveBudget {
            deadline: None,
            iterations_left: None,
            cancel: None,
        }
    }

    /// Records `cost` iterations of work and checks every limit.
    ///
    /// # Errors
    /// [`InfeasibleCause::Cancelled`] when the cancellation flag is
    /// raised, [`InfeasibleCause::BudgetExhausted`] when the wall-clock
    /// deadline passed or fewer than `cost` iterations remain.
    pub fn spend(&mut self, cost: u64) -> Result<(), InfeasibleCause> {
        if self
            .cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
        {
            return Err(InfeasibleCause::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(InfeasibleCause::BudgetExhausted);
        }
        if let Some(left) = self.iterations_left.as_mut() {
            if *left < cost {
                *left = 0;
                return Err(InfeasibleCause::BudgetExhausted);
            }
            *left -= cost;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_strings_are_stable_and_distinct() {
        let causes = [
            InfeasibleCause::UtilisationOverload,
            InfeasibleCause::BlockingBound,
            InfeasibleCause::NoFeasibleSlot,
            InfeasibleCause::BudgetExhausted,
            InfeasibleCause::Cancelled,
        ];
        let mut names: Vec<&str> = causes.iter().map(|c| c.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), causes.len());
        assert_eq!(
            InfeasibleCause::NoFeasibleSlot.to_string(),
            "no-feasible-slot"
        );
    }

    #[test]
    fn with_jobs_derives_and_dedupes_tasks() {
        let d = Infeasible::new(InfeasibleCause::NoFeasibleSlot).with_jobs([
            JobId::new(TaskId(3), 1),
            JobId::new(TaskId(1), 0),
            JobId::new(TaskId(3), 1),
            JobId::new(TaskId(3), 0),
        ]);
        assert_eq!(d.tasks, vec![TaskId(1), TaskId(3)]);
        assert_eq!(
            d.jobs,
            vec![
                JobId::new(TaskId(1), 0),
                JobId::new(TaskId(3), 0),
                JobId::new(TaskId(3), 1)
            ]
        );
        assert!(d.is_populated());
        assert!(!Infeasible::new(InfeasibleCause::Cancelled).is_populated());
    }

    #[test]
    fn with_tasks_preserves_order_and_dedupes() {
        let d = Infeasible::new(InfeasibleCause::UtilisationOverload).with_tasks([
            TaskId(5),
            TaskId(2),
            TaskId(5),
        ]);
        assert_eq!(d.tasks, vec![TaskId(5), TaskId(2)]);
    }

    #[test]
    fn display_includes_cause_ids_and_partial() {
        let d = Infeasible::new(InfeasibleCause::BlockingBound)
            .with_jobs([JobId::new(TaskId(2), 1)])
            .with_partial(0.5, 0.75);
        let s = d.to_string();
        assert!(s.contains("blocking-bound"), "{s}");
        assert!(s.contains("t2"), "{s}");
        assert!(s.contains("0.500"), "{s}");
        // And it is a proper error type.
        fn assert_error<T: std::error::Error + Send + Sync>(_: &T) {}
        assert_error(&d);
    }

    #[test]
    fn origin_marks_failover_diagnostics() {
        let d = Infeasible::new(InfeasibleCause::NoFeasibleSlot).with_origin(DeviceId(3));
        assert!(d.is_populated());
        assert_eq!(d.origin, Some(DeviceId(3)));
        let s = d.to_string();
        assert!(s.contains("orphaned by death of d3"), "{s}");
        assert_eq!(
            Infeasible::new(InfeasibleCause::NoFeasibleSlot).origin,
            None
        );
    }

    #[test]
    fn iteration_budget_exhausts_once() {
        let ctx = SolverCtx::new().with_iteration_budget(3);
        let mut b = ctx.budget();
        assert!(b.spend(2).is_ok());
        assert!(b.spend(1).is_ok());
        assert_eq!(b.spend(1), Err(InfeasibleCause::BudgetExhausted));
        // Unlimited never exhausts.
        let mut u = SolveBudget::unlimited();
        assert!(u.spend(u64::MAX).is_ok());
    }

    #[test]
    fn zero_time_budget_is_immediately_exhausted() {
        let ctx = SolverCtx::new().with_time_budget(Duration::ZERO);
        assert!(ctx.is_budgeted());
        let mut b = ctx.budget();
        assert_eq!(b.spend(0), Err(InfeasibleCause::BudgetExhausted));
    }

    #[test]
    fn cancellation_flag_wins_over_budgets() {
        let flag = Arc::new(AtomicBool::new(false));
        let ctx = SolverCtx::new()
            .with_cancel_flag(Arc::clone(&flag))
            .with_iteration_budget(0);
        assert!(!ctx.cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(ctx.cancelled());
        assert_eq!(ctx.budget().spend(0), Err(InfeasibleCause::Cancelled));
    }

    #[test]
    fn seed_accessors() {
        assert_eq!(SolverCtx::new().seed(), None);
        assert_eq!(SolverCtx::new().seed_or(9), 9);
        assert_eq!(SolverCtx::seeded(4).seed_or(9), 4);
        assert_eq!(SolverCtx::new().with_threads(2).threads(), Some(2));
    }
}
