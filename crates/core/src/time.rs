//! Integer time base.
//!
//! All scheduling computations in this crate family happen on an integer
//! microsecond grid. The paper's hyper-period of 1440 ms is exactly
//! representable, and the central question "did this job start *exactly* at
//! its ideal instant" ([`crate::metrics::psi`]) becomes an integer equality
//! with no floating-point hazards.
//!
//! Two newtypes are provided:
//!
//! * [`Time`] — an absolute instant, microseconds since the schedule epoch
//!   (the start of the hyper-period).
//! * [`Duration`] — a non-negative span of time in microseconds.
//!
//! ```
//! use tagio_core::time::{Time, Duration};
//!
//! let release = Time::from_millis(10);
//! let wcet = Duration::from_micros(250);
//! let finish = release + wcet;
//! assert_eq!(finish, Time::from_micros(10_250));
//! assert_eq!(finish - release, wcet);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An absolute instant, in microseconds since the schedule epoch.
///
/// `Time` is ordered, hashable, and cheap to copy. Subtracting two `Time`s
/// yields a [`Duration`]; subtraction that would go negative panics (use
/// [`Time::checked_sub`] or [`Time::saturating_sub`] to avoid that).
///
/// ```
/// use tagio_core::time::Time;
/// assert!(Time::from_millis(2) > Time::from_micros(1999));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

/// A non-negative span of time, in microseconds.
///
/// ```
/// use tagio_core::time::Duration;
/// let d = Duration::from_millis(1) + Duration::from_micros(500);
/// assert_eq!(d.as_micros(), 1500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(u64);

impl Time {
    /// The schedule epoch (time zero).
    pub const ZERO: Time = Time(0);
    /// The largest representable instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a `Time` from a raw microsecond count.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Time(us)
    }

    /// Creates a `Time` from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000)
    }

    /// Creates a `Time` from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000)
    }

    /// Returns the raw microsecond count.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional milliseconds (for reporting only).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Checked subtraction of another instant; `None` if `other` is later.
    #[must_use]
    pub const fn checked_sub(self, other: Time) -> Option<Duration> {
        match self.0.checked_sub(other.0) {
            Some(d) => Some(Duration(d)),
            None => None,
        }
    }

    /// Saturating subtraction of another instant (clamps at zero).
    #[must_use]
    pub const fn saturating_sub(self, other: Time) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction of a duration; `None` on underflow.
    #[must_use]
    pub const fn checked_sub_duration(self, d: Duration) -> Option<Time> {
        match self.0.checked_sub(d.0) {
            Some(t) => Some(Time(t)),
            None => None,
        }
    }

    /// Saturating subtraction of a duration (clamps at the epoch).
    #[must_use]
    pub const fn saturating_sub_duration(self, d: Duration) -> Time {
        Time(self.0.saturating_sub(d.0))
    }

    /// Absolute distance to another instant.
    ///
    /// ```
    /// use tagio_core::time::{Time, Duration};
    /// let a = Time::from_micros(10);
    /// let b = Time::from_micros(4);
    /// assert_eq!(a.abs_diff(b), Duration::from_micros(6));
    /// assert_eq!(b.abs_diff(a), Duration::from_micros(6));
    /// ```
    #[must_use]
    pub const fn abs_diff(self, other: Time) -> Duration {
        Duration(self.0.abs_diff(other.0))
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a `Duration` from a raw microsecond count.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Creates a `Duration` from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Creates a `Duration` from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Returns the raw microsecond count.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional milliseconds (for reporting only).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// `true` if this is the empty span.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    #[must_use]
    pub const fn checked_sub(self, other: Duration) -> Option<Duration> {
        match self.0.checked_sub(other.0) {
            Some(d) => Some(Duration(d)),
            None => None,
        }
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub const fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two spans.
    #[must_use]
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    #[must_use]
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    /// # Panics
    /// Panics if the result would precede the epoch.
    fn sub(self, rhs: Duration) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("time subtraction before epoch"),
        )
    }
}

impl SubAssign<Duration> for Time {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self
            .0
            .checked_sub(rhs.0)
            .expect("time subtraction before epoch");
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    /// # Panics
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: Time) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative duration from time subtraction"),
        )
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    /// # Panics
    /// Panics on underflow.
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div for Duration {
    type Output = u64;
    /// Integer ratio of two spans (floor).
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem for Duration {
    type Output = Duration;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl From<Duration> for Time {
    /// Interprets a span measured from the epoch as an instant.
    fn from(d: Duration) -> Time {
        Time(d.0)
    }
}

impl From<Time> for Duration {
    /// Interprets an instant as its distance from the epoch.
    fn from(t: Time) -> Duration {
        Duration(t.0)
    }
}

/// Greatest common divisor of two spans (used for hyper-period reduction).
#[must_use]
pub fn gcd(a: Duration, b: Duration) -> Duration {
    let (mut a, mut b) = (a.0, b.0);
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    Duration(a)
}

/// Least common multiple of two spans (used for hyper-period computation).
///
/// # Panics
/// Panics if either span is zero or the result overflows `u64`.
#[must_use]
pub fn lcm(a: Duration, b: Duration) -> Duration {
    assert!(!a.is_zero() && !b.is_zero(), "lcm of zero-length span");
    let g = gcd(a, b);
    Duration((a.0 / g.0).checked_mul(b.0).expect("hyper-period overflow"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_scale() {
        assert_eq!(Time::from_millis(3), Time::from_micros(3_000));
        assert_eq!(Time::from_secs(2), Time::from_millis(2_000));
        assert_eq!(Duration::from_millis(3), Duration::from_micros(3_000));
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
    }

    #[test]
    fn time_plus_duration_roundtrip() {
        let t = Time::from_micros(100);
        let d = Duration::from_micros(42);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::from_micros(5) < Time::from_micros(6));
        assert!(Duration::from_micros(5) < Duration::from_micros(6));
        assert_eq!(Time::ZERO, Time::from_micros(0));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_time_subtraction_panics() {
        let _ = Time::from_micros(1) - Time::from_micros(2);
    }

    #[test]
    fn checked_and_saturating_subtraction() {
        let a = Time::from_micros(5);
        let b = Time::from_micros(9);
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        assert_eq!(b.checked_sub(a), Some(Duration::from_micros(4)));
        assert_eq!(a.checked_sub_duration(Duration::from_micros(6)), None);
        assert_eq!(
            a.saturating_sub_duration(Duration::from_micros(6)),
            Time::ZERO
        );
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Time::from_micros(10);
        let b = Time::from_micros(25);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!(a.abs_diff(b), Duration::from_micros(15));
        assert_eq!(a.abs_diff(a), Duration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_micros(10);
        assert_eq!(d * 3, Duration::from_micros(30));
        assert_eq!(d / 2, Duration::from_micros(5));
        assert_eq!(Duration::from_micros(30) / d, 3);
        assert_eq!(Duration::from_micros(35) % d, Duration::from_micros(5));
        assert_eq!(
            vec![d, d, d].into_iter().sum::<Duration>(),
            Duration::from_micros(30)
        );
    }

    #[test]
    fn gcd_lcm_basics() {
        let a = Duration::from_micros(12);
        let b = Duration::from_micros(18);
        assert_eq!(gcd(a, b), Duration::from_micros(6));
        assert_eq!(lcm(a, b), Duration::from_micros(36));
        assert_eq!(gcd(a, Duration::ZERO), a);
    }

    #[test]
    fn lcm_of_paper_periods_is_hyperperiod() {
        // A representative subset of divisors of 1440 ms.
        let periods = [10u64, 16, 30, 40, 60, 90, 160, 240, 480, 1440];
        let hp = periods
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .fold(Duration::from_micros(1), lcm);
        assert_eq!(hp, Duration::from_millis(1440));
    }

    #[test]
    fn min_max_helpers() {
        let a = Time::from_micros(1);
        let b = Time::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = Duration::from_micros(1);
        let y = Duration::from_micros(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(Time::from_micros(7).to_string(), "7us");
        assert_eq!(Duration::from_millis(1).to_string(), "1000us");
    }
}
