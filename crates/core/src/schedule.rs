//! Explicit job-level schedules and their validation.
//!
//! Both scheduling methods in the paper are *offline*: they output, for every
//! job of the hyper-period, the actual start time `κi^j`. A [`Schedule`] is
//! exactly that table. [`Schedule::validate`] independently checks the two
//! constraints every correct schedule must satisfy:
//!
//! * **Constraint 1** — every job executes inside its release window and
//!   completes by its deadline (`Ti·j ≤ κ ≤ Ti·j + Di − Ci`);
//! * **Constraint 2** — executions are non-preemptive and never overlap on
//!   the (single) partition device.
//!
//! Every scheduler in `tagio-sched` is judged by this impartial code, and the
//! hardware simulator in `tagio-controller` replays validated schedules.

use crate::error::ValidateScheduleError;
use crate::job::{Job, JobId, JobSet};
use crate::time::{Duration, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The scheduled execution of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The job this entry executes.
    pub job: JobId,
    /// Actual start time `κi^j` decided by the scheduler.
    pub start: Time,
    /// Execution budget (the job's WCET; the controller holds the device for
    /// exactly this long to preserve the offline decisions, §III.C).
    pub duration: Duration,
}

impl ScheduleEntry {
    /// Completion instant (`start + duration`).
    #[must_use]
    pub fn finish(&self) -> Time {
        self.start + self.duration
    }
}

/// An explicit offline schedule for one partition over one hyper-period.
///
/// Entries are kept sorted by start time (ties by job id) regardless of
/// insertion order.
///
/// ```
/// use tagio_core::schedule::{Schedule, ScheduleEntry};
/// use tagio_core::job::JobId;
/// use tagio_core::task::TaskId;
/// use tagio_core::time::{Time, Duration};
///
/// let mut s = Schedule::new();
/// s.insert(ScheduleEntry {
///     job: JobId::new(TaskId(0), 0),
///     start: Time::from_millis(2),
///     duration: Duration::from_micros(100),
/// });
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    entries: Vec<ScheduleEntry>,
}

impl Schedule {
    /// Creates an empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Schedule {
            entries: Vec::new(),
        }
    }

    /// Inserts an entry, keeping start-time order.
    pub fn insert(&mut self, entry: ScheduleEntry) {
        let pos = self
            .entries
            .partition_point(|e| (e.start, e.job) <= (entry.start, entry.job));
        self.entries.insert(pos, entry);
    }

    /// Number of scheduled jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in start-time order.
    pub fn iter(&self) -> core::slice::Iter<'_, ScheduleEntry> {
        self.entries.iter()
    }

    /// Entries as a slice (start-time order).
    #[must_use]
    pub fn as_slice(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Looks up the entry for a job.
    #[must_use]
    pub fn start_of(&self, job: JobId) -> Option<Time> {
        self.entries.iter().find(|e| e.job == job).map(|e| e.start)
    }

    /// The completion time of the last entry ([`Time::ZERO`] when empty).
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.entries
            .iter()
            .map(ScheduleEntry::finish)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Validates this schedule against `jobs`.
    ///
    /// Checks that every job of the set is scheduled exactly once, within its
    /// release window (Constraint 1), and that no two executions overlap
    /// (Constraint 2).
    ///
    /// # Errors
    /// Returns the first violation found as a [`ValidateScheduleError`].
    pub fn validate(&self, jobs: &JobSet) -> Result<(), ValidateScheduleError> {
        let mut seen: HashMap<JobId, &ScheduleEntry> = HashMap::with_capacity(self.entries.len());
        for e in &self.entries {
            if seen.insert(e.job, e).is_some() {
                return Err(ValidateScheduleError::DuplicateJob { job: e.job });
            }
        }
        for job in jobs {
            let Some(entry) = seen.get(&job.id()) else {
                return Err(ValidateScheduleError::MissingJob { job: job.id() });
            };
            if entry.duration != job.wcet() {
                return Err(ValidateScheduleError::WrongDuration {
                    job: job.id(),
                    expected: job.wcet(),
                    actual: entry.duration,
                });
            }
            if entry.start < job.release() {
                return Err(ValidateScheduleError::StartsBeforeRelease {
                    job: job.id(),
                    start: entry.start,
                    release: job.release(),
                });
            }
            if entry.finish() > job.abs_deadline() {
                return Err(ValidateScheduleError::MissesDeadline {
                    job: job.id(),
                    finish: entry.finish(),
                    deadline: job.abs_deadline(),
                });
            }
        }
        if seen.len() != jobs.len() {
            // An entry refers to a job not present in the set.
            for e in &self.entries {
                if jobs.get(e.job).is_none() {
                    return Err(ValidateScheduleError::UnknownJob { job: e.job });
                }
            }
        }
        for pair in self.entries.windows(2) {
            if pair[0].finish() > pair[1].start {
                return Err(ValidateScheduleError::Overlap {
                    first: pair[0].job,
                    second: pair[1].job,
                });
            }
        }
        Ok(())
    }

    /// The idle intervals between scheduled executions within `[0, horizon)`.
    ///
    /// Useful for slot-based allocation (the static method's LCC-D phase) and
    /// for utilisation reporting.
    #[must_use]
    pub fn gaps(&self, horizon: Time) -> Vec<(Time, Time)> {
        let mut gaps = Vec::new();
        let mut cursor = Time::ZERO;
        for e in &self.entries {
            if e.start > cursor {
                gaps.push((cursor, e.start));
            }
            cursor = cursor.max(e.finish());
        }
        if horizon > cursor {
            gaps.push((cursor, horizon));
        }
        gaps
    }

    /// Fraction of `[0, horizon)` occupied by executions.
    ///
    /// # Panics
    /// Panics if `horizon` is the epoch.
    #[must_use]
    pub fn busy_fraction(&self, horizon: Time) -> f64 {
        assert!(horizon > Time::ZERO, "horizon must be positive");
        let busy: Duration = self.entries.iter().map(|e| e.duration).sum();
        busy.as_micros() as f64 / horizon.as_micros() as f64
    }

    /// Repeats this one-hyper-period schedule `count` times, shifting each
    /// copy by `hyperperiod` and renumbering job indices accordingly.
    ///
    /// This realises the paper's §III.C remark that the offline methods
    /// "produce explicit schedule for different hyper-periods of the input
    /// jobs, until the schedule can repeat in future execution": the
    /// controller's scheduling table can be filled with as many repetitions
    /// as its capacity allows and reloaded per hyper-period thereafter.
    ///
    /// Job indices are renumbered by adding `k × jobs_of_task` for the
    /// `k`-th copy, where `jobs_of_task` is how many entries that task has
    /// in this schedule.
    ///
    /// # Panics
    /// Panics if `count` is zero or `hyperperiod` is zero for a non-empty
    /// schedule.
    #[must_use]
    pub fn repeat(&self, count: u32, hyperperiod: Duration) -> Schedule {
        assert!(count > 0, "need at least one repetition");
        if self.entries.is_empty() {
            return Schedule::new();
        }
        assert!(!hyperperiod.is_zero(), "hyper-period must be positive");
        let mut per_task: HashMap<crate::task::TaskId, u32> = HashMap::new();
        for e in &self.entries {
            *per_task.entry(e.job.task).or_insert(0) += 1;
        }
        let mut out = Vec::with_capacity(self.entries.len() * count as usize);
        for k in 0..count {
            let shift = hyperperiod * u64::from(k);
            for e in &self.entries {
                out.push(ScheduleEntry {
                    job: JobId::new(e.job.task, e.job.index + k * per_task[&e.job.task]),
                    start: e.start + shift,
                    duration: e.duration,
                });
            }
        }
        out.into_iter().collect()
    }
}

impl FromIterator<ScheduleEntry> for Schedule {
    fn from_iter<I: IntoIterator<Item = ScheduleEntry>>(iter: I) -> Self {
        let mut s = Schedule::new();
        for e in iter {
            s.insert(e);
        }
        s
    }
}

impl Extend<ScheduleEntry> for Schedule {
    fn extend<I: IntoIterator<Item = ScheduleEntry>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl<'a> IntoIterator for &'a Schedule {
    type Item = &'a ScheduleEntry;
    type IntoIter = core::slice::Iter<'a, ScheduleEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Builds an entry for `job` starting at `start` (duration = WCET).
#[must_use]
pub fn entry_for(job: &Job, start: Time) -> ScheduleEntry {
    ScheduleEntry {
        job: job.id(),
        start,
        duration: job.wcet(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityCurve;
    use crate::task::{Priority, TaskId};

    fn job(task: u32, index: u32, release_ms: u64, deadline_ms: u64, wcet_us: u64) -> Job {
        let release = Time::from_millis(release_ms);
        let deadline = Time::from_millis(deadline_ms);
        let mid = Time::from_micros((release.as_micros() + deadline.as_micros()) / 2);
        Job::new(
            JobId::new(TaskId(task), index),
            release,
            mid,
            deadline,
            Duration::from_micros(wcet_us),
            Duration::ZERO,
            Priority(task),
            QualityCurve::linear(1.0, 0.0),
        )
    }

    fn jobset(jobs: Vec<Job>, hp_ms: u64) -> JobSet {
        JobSet::from_jobs(jobs, Duration::from_millis(hp_ms))
    }

    #[test]
    fn insert_keeps_start_order() {
        let mut s = Schedule::new();
        s.insert(entry_for(&job(1, 0, 0, 10, 100), Time::from_millis(5)));
        s.insert(entry_for(&job(0, 0, 0, 10, 100), Time::from_millis(1)));
        let starts: Vec<Time> = s.iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![Time::from_millis(1), Time::from_millis(5)]);
    }

    #[test]
    fn validate_accepts_correct_schedule() {
        let a = job(0, 0, 0, 10, 100);
        let b = job(1, 0, 0, 10, 100);
        let js = jobset(vec![a.clone(), b.clone()], 10);
        let s: Schedule = vec![
            entry_for(&a, Time::from_millis(1)),
            entry_for(&b, Time::from_millis(2)),
        ]
        .into_iter()
        .collect();
        assert!(s.validate(&js).is_ok());
    }

    #[test]
    fn validate_rejects_missing_job() {
        let a = job(0, 0, 0, 10, 100);
        let b = job(1, 0, 0, 10, 100);
        let js = jobset(vec![a.clone(), b], 10);
        let s: Schedule = vec![entry_for(&a, Time::from_millis(1))]
            .into_iter()
            .collect();
        assert!(matches!(
            s.validate(&js),
            Err(ValidateScheduleError::MissingJob { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_job() {
        let a = job(0, 0, 0, 10, 100);
        let js = jobset(vec![a.clone()], 10);
        let s: Schedule = vec![
            entry_for(&a, Time::from_millis(1)),
            entry_for(&a, Time::from_millis(2)),
        ]
        .into_iter()
        .collect();
        assert!(matches!(
            s.validate(&js),
            Err(ValidateScheduleError::DuplicateJob { .. })
        ));
    }

    #[test]
    fn validate_rejects_unknown_job() {
        let a = job(0, 0, 0, 10, 100);
        let ghost = job(9, 0, 0, 10, 100);
        let js = jobset(vec![a.clone()], 10);
        let s: Schedule = vec![
            entry_for(&a, Time::from_millis(1)),
            entry_for(&ghost, Time::from_millis(5)),
        ]
        .into_iter()
        .collect();
        assert!(matches!(
            s.validate(&js),
            Err(ValidateScheduleError::UnknownJob { .. })
        ));
    }

    #[test]
    fn validate_rejects_early_start() {
        let a = job(0, 0, 5, 10, 100);
        let js = jobset(vec![a.clone()], 10);
        let s: Schedule = vec![entry_for(&a, Time::from_millis(4))]
            .into_iter()
            .collect();
        assert!(matches!(
            s.validate(&js),
            Err(ValidateScheduleError::StartsBeforeRelease { .. })
        ));
    }

    #[test]
    fn validate_rejects_deadline_miss() {
        let a = job(0, 0, 0, 1, 100);
        let js = jobset(vec![a.clone()], 1);
        let s: Schedule = vec![entry_for(&a, Time::from_micros(950))]
            .into_iter()
            .collect();
        assert!(matches!(
            s.validate(&js),
            Err(ValidateScheduleError::MissesDeadline { .. })
        ));
    }

    #[test]
    fn validate_rejects_overlap() {
        let a = job(0, 0, 0, 10, 500);
        let b = job(1, 0, 0, 10, 500);
        let js = jobset(vec![a.clone(), b.clone()], 10);
        let s: Schedule = vec![
            entry_for(&a, Time::from_millis(1)),
            entry_for(&b, Time::from_micros(1_200)),
        ]
        .into_iter()
        .collect();
        assert!(matches!(
            s.validate(&js),
            Err(ValidateScheduleError::Overlap { .. })
        ));
    }

    #[test]
    fn validate_rejects_wrong_duration() {
        let a = job(0, 0, 0, 10, 500);
        let js = jobset(vec![a.clone()], 10);
        let s: Schedule = vec![ScheduleEntry {
            job: a.id(),
            start: Time::from_millis(1),
            duration: Duration::from_micros(400),
        }]
        .into_iter()
        .collect();
        assert!(matches!(
            s.validate(&js),
            Err(ValidateScheduleError::WrongDuration { .. })
        ));
    }

    #[test]
    fn back_to_back_entries_do_not_overlap() {
        let a = job(0, 0, 0, 10, 500);
        let b = job(1, 0, 0, 10, 500);
        let js = jobset(vec![a.clone(), b.clone()], 10);
        let s: Schedule = vec![
            entry_for(&a, Time::from_millis(1)),
            entry_for(&b, Time::from_micros(1_500)),
        ]
        .into_iter()
        .collect();
        assert!(s.validate(&js).is_ok());
    }

    #[test]
    fn gaps_cover_idle_time() {
        let a = job(0, 0, 0, 10, 1000);
        let s: Schedule = vec![entry_for(&a, Time::from_millis(2))]
            .into_iter()
            .collect();
        let gaps = s.gaps(Time::from_millis(10));
        assert_eq!(
            gaps,
            vec![
                (Time::ZERO, Time::from_millis(2)),
                (Time::from_millis(3), Time::from_millis(10)),
            ]
        );
    }

    #[test]
    fn gaps_of_empty_schedule_is_whole_horizon() {
        let s = Schedule::new();
        assert_eq!(
            s.gaps(Time::from_millis(5)),
            vec![(Time::ZERO, Time::from_millis(5))]
        );
    }

    #[test]
    fn busy_fraction_and_makespan() {
        let a = job(0, 0, 0, 10, 1000);
        let b = job(1, 0, 0, 10, 1000);
        let s: Schedule = vec![
            entry_for(&a, Time::from_millis(0)),
            entry_for(&b, Time::from_millis(5)),
        ]
        .into_iter()
        .collect();
        assert!((s.busy_fraction(Time::from_millis(10)) - 0.2).abs() < 1e-12);
        assert_eq!(s.makespan(), Time::from_millis(6));
    }

    #[test]
    fn repeat_shifts_and_renumbers() {
        let a = job(0, 0, 0, 10, 100);
        let b = job(1, 0, 0, 10, 200);
        let s: Schedule = vec![
            entry_for(&a, Time::from_millis(1)),
            entry_for(&b, Time::from_millis(5)),
        ]
        .into_iter()
        .collect();
        let r = s.repeat(3, Duration::from_millis(10));
        assert_eq!(r.len(), 6);
        // Second copy of task 0 lands at 11ms with index 1.
        assert_eq!(
            r.start_of(JobId::new(TaskId(0), 1)),
            Some(Time::from_millis(11))
        );
        assert_eq!(
            r.start_of(JobId::new(TaskId(1), 2)),
            Some(Time::from_millis(25))
        );
    }

    #[test]
    fn repeat_validates_against_repeated_jobset() {
        // Expand a task set over one hyper-period; repeating the schedule
        // must validate against the expansion over k hyper-periods.
        use crate::task::{DeviceId, IoTask};
        let mk = |period_ms: u64| {
            IoTask::builder(TaskId(0), DeviceId(0))
                .wcet(Duration::from_micros(100))
                .period(Duration::from_millis(period_ms))
                .ideal_offset(Duration::from_millis(period_ms / 2))
                .margin(Duration::from_millis(period_ms / 4))
                .build()
                .unwrap()
        };
        let one: crate::task::TaskSet = vec![mk(4)].into_iter().collect();
        let jobs_one = JobSet::expand(&one);
        let s: Schedule = jobs_one
            .iter()
            .map(|j| entry_for(j, j.ideal_start()))
            .collect();
        let repeated = s.repeat(3, Duration::from_millis(4));
        // Build the 3-hyper-period job set by hand (period divides 12ms).
        let three: crate::task::TaskSet = vec![{
            let mut t = mk(4);
            let _ = &mut t;
            t
        }]
        .into_iter()
        .collect();
        let mut jobs = Vec::new();
        for j in 0..3u32 {
            let base = Time::from_millis(u64::from(j) * 4);
            let task = three.get(TaskId(0)).unwrap();
            jobs.push(Job::new(
                JobId::new(TaskId(0), j),
                base,
                base + task.ideal_offset(),
                base + task.deadline(),
                task.wcet(),
                task.margin(),
                task.priority(),
                crate::quality::QualityCurve::linear(task.vmax(), task.vmin()),
            ));
        }
        let jobs3 = JobSet::from_jobs(jobs, Duration::from_millis(12));
        repeated.validate(&jobs3).expect("repeated schedule valid");
    }

    #[test]
    fn repeat_of_empty_schedule_is_empty() {
        assert!(Schedule::new()
            .repeat(5, Duration::from_millis(1))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn repeat_zero_panics() {
        let _ = Schedule::new().repeat(0, Duration::from_millis(1));
    }

    #[test]
    fn start_of_finds_entry() {
        let a = job(0, 0, 0, 10, 100);
        let s: Schedule = vec![entry_for(&a, Time::from_millis(3))]
            .into_iter()
            .collect();
        assert_eq!(s.start_of(a.id()), Some(Time::from_millis(3)));
        assert_eq!(s.start_of(JobId::new(TaskId(42), 0)), None);
    }
}
