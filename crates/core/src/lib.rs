//! # tagio-core
//!
//! Task model, quality curves, explicit schedules and performance metrics
//! for **timing-accurate general-purpose I/O scheduling**, reproducing the
//! system model of *"Timing-Accurate General-Purpose I/O for Multi- and
//! Many-Core Systems: Scheduling and Hardware Support"* (Zhao et al.,
//! DAC 2020).
//!
//! ## Model summary
//!
//! Timed I/O requests are periodic tasks `τi = {Ci, Ti, Di, Pi, δi, θi}`
//! ([`task::IoTask`]). Over one hyper-period each task releases jobs
//! ([`job::Job`]) whose *ideal start* is `Ti·j + δi`. An offline scheduler
//! assigns each job an actual start `κi^j`, recorded in a
//! [`schedule::Schedule`]. A job started exactly at its ideal instant yields
//! quality `Vmax`; within `[δ−θ, δ+θ]` the quality decays along a
//! [`quality::QualityCurve`]; elsewhere (but before the deadline) it yields
//! `Vmin`.
//!
//! Two metrics judge a schedule ([`metrics`]):
//! **Ψ** — the fraction of exactly-accurate jobs (Eq. (1)), and
//! **Υ** — the normalised aggregate quality (Eq. (2)).
//!
//! ## Example
//!
//! ```
//! use tagio_core::job::JobSet;
//! use tagio_core::metrics;
//! use tagio_core::schedule::{entry_for, Schedule};
//! use tagio_core::task::{DeviceId, IoTask, TaskId, TaskSet};
//! use tagio_core::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut tasks = TaskSet::new();
//! tasks.push(
//!     IoTask::builder(TaskId(0), DeviceId(0))
//!         .wcet(Duration::from_micros(200))
//!         .period(Duration::from_millis(10))
//!         .ideal_offset(Duration::from_millis(5))
//!         .margin(Duration::from_micros(2_500))
//!         .build()?,
//! )?;
//! tasks.assign_dmpo();
//!
//! let jobs = JobSet::expand(&tasks);
//! // Schedule every job exactly at its ideal instant.
//! let schedule: Schedule = jobs.iter().map(|j| entry_for(j, j.ideal_start())).collect();
//! schedule.validate(&jobs)?;
//! assert_eq!(metrics::psi(&schedule, &jobs), 1.0);
//! assert_eq!(metrics::upsilon(&schedule, &jobs), 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod error;
pub mod event;
pub mod job;
pub mod metrics;
pub mod pool;
pub mod quality;
pub mod schedule;
pub mod solve;
pub mod task;
pub mod time;

pub use error::{ValidateScheduleError, ValidateTaskError};
pub use event::{Mode, ModeId, SystemEvent, TimedEvent};
pub use job::{Job, JobId, JobSet};
pub use metrics::{MetricSet, Metrics};
pub use pool::{available_workers, WorkerPool};
pub use quality::{QualityCurve, QualityShape};
pub use schedule::{entry_for, Schedule, ScheduleEntry};
pub use solve::{Infeasible, InfeasibleCause, SolveBudget, SolverCtx};
pub use task::{DeviceId, IoTask, IoTaskBuilder, Priority, TaskId, TaskSet};
pub use time::{Duration, Time};
