//! The timed I/O task model (paper Section II).
//!
//! A timed I/O request is a periodic task `τi = {Ci, Ti, Di, Pi, δi, θi}`:
//! worst-case device operation time `Ci`, period `Ti`, deadline `Di`
//! (implicit, `Di = Ti`), deadline-monotonic priority `Pi`, *ideal start
//! offset* `δi` (relative to each release) at which the I/O operation should
//! ideally occur, and *timing margin* `θi` bounding the window
//! `[δi − θi, δi + θi]` in which the operation still yields above-minimum
//! quality.
//!
//! ```
//! use tagio_core::task::{IoTask, TaskId, DeviceId};
//! use tagio_core::time::Duration;
//!
//! # fn main() -> Result<(), tagio_core::error::ValidateTaskError> {
//! let task = IoTask::builder(TaskId(0), DeviceId(0))
//!     .wcet(Duration::from_micros(500))
//!     .period(Duration::from_millis(10))
//!     .ideal_offset(Duration::from_millis(4))
//!     .margin(Duration::from_micros(2_500))
//!     .build()?;
//! assert_eq!(task.deadline(), task.period()); // implicit deadline
//! # Ok(())
//! # }
//! ```

use crate::error::ValidateTaskError;
use crate::time::{lcm, Duration};
use core::fmt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of an I/O task within a [`TaskSet`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaskId(pub u32);

/// Identifier of an I/O device (one controller-processor partition each).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DeviceId(pub u32);

/// Identifier of the **tenant** an I/O task belongs to.
///
/// Tenant `0` is the *anonymous* tenant: untenanted workloads (every
/// trace written before the tenancy tier existed) carry it implicitly,
/// and no per-tenant accounting is performed for it — so an anonymous
/// stream behaves and serialises bit-identically to the pre-tenant
/// system. The online service layer (`tagio-online`) maps non-anonymous
/// tenants onto quotas and QoS classes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The anonymous tenant carried by untenanted workloads.
    pub const ANONYMOUS: TenantId = TenantId(0);

    /// Whether this is the anonymous (unaccounted) tenant.
    #[must_use]
    pub fn is_anonymous(self) -> bool {
        self.0 == 0
    }
}

/// A fixed task priority. **Larger numeric value means higher priority.**
///
/// Deadline-monotonic priority ordering ([`TaskSet::assign_dmpo`]) gives the
/// shortest-deadline task the largest value, matching the paper's convention
/// that `D1 > D2 ⇒ P1 < P2` and `Vmax = Pi + 1`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Priority(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tn{}", self.0)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A periodic timed I/O task (paper Section II, the 6-tuple
/// `{Ci, Ti, Di, Pi, δi, θi}` plus its quality extrema `Vmax`/`Vmin`).
///
/// Construct with [`IoTask::builder`]; the builder validates the model
/// invariants (see [`IoTaskBuilder::build`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoTask {
    id: TaskId,
    device: DeviceId,
    wcet: Duration,
    period: Duration,
    deadline: Duration,
    priority: Priority,
    ideal_offset: Duration,
    margin: Duration,
    vmax: f64,
    vmin: f64,
    #[serde(default)]
    release_offset: Duration,
    #[serde(default)]
    tenant: TenantId,
}

impl IoTask {
    /// Starts building a task bound to `device`.
    #[must_use]
    pub fn builder(id: TaskId, device: DeviceId) -> IoTaskBuilder {
        IoTaskBuilder {
            id,
            device,
            wcet: Duration::ZERO,
            period: Duration::ZERO,
            deadline: None,
            priority: Priority(0),
            ideal_offset: Duration::ZERO,
            margin: Duration::ZERO,
            vmax: 1.0,
            vmin: 0.0,
            release_offset: Duration::ZERO,
            tenant: TenantId::ANONYMOUS,
        }
    }

    /// Task identifier.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The I/O device this task operates on (its scheduling partition).
    #[must_use]
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The same task re-bound to another device partition. All timing
    /// and quality parameters are device-independent, so no re-validation
    /// is needed — this is how a fleet router moves an arrival between
    /// partitions.
    #[must_use]
    pub fn retarget(&self, device: DeviceId) -> IoTask {
        IoTask {
            device,
            ..self.clone()
        }
    }

    /// Worst-case device operation time `Ci`.
    #[must_use]
    pub fn wcet(&self) -> Duration {
        self.wcet
    }

    /// Period `Ti`.
    #[must_use]
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Relative deadline `Di` (implicit: equals the period unless overridden).
    #[must_use]
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Fixed priority `Pi` (larger value = higher priority).
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Ideal start offset `δi` relative to each release.
    #[must_use]
    pub fn ideal_offset(&self) -> Duration {
        self.ideal_offset
    }

    /// Timing margin `θi` around the ideal start.
    #[must_use]
    pub fn margin(&self) -> Duration {
        self.margin
    }

    /// Release offset `Oi`: the task's first job releases at `Oi` instead
    /// of the epoch (paper §III.C — "the proposed methods can also be
    /// applied to I/O tasks with different release offsets"). Zero by
    /// default.
    #[must_use]
    pub fn release_offset(&self) -> Duration {
        self.release_offset
    }

    /// The tenant this task belongs to ([`TenantId::ANONYMOUS`] unless
    /// set at build time). Tenancy is routing/accounting metadata: it
    /// never participates in the timing model or schedule validation.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Maximum quality `Vmax`, obtained when starting exactly at `δi`.
    #[must_use]
    pub fn vmax(&self) -> f64 {
        self.vmax
    }

    /// Minimum quality `Vmin`, obtained when the job completes by its
    /// deadline but starts outside `[δi − θi, δi + θi]`.
    #[must_use]
    pub fn vmin(&self) -> f64 {
        self.vmin
    }

    /// The task utilisation `Ci / Ti`.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        self.wcet.as_micros() as f64 / self.period.as_micros() as f64
    }

    /// Overrides the priority (used by [`TaskSet::assign_dmpo`]).
    pub fn set_priority(&mut self, priority: Priority) {
        self.priority = priority;
    }

    /// Overrides `Vmax` (the paper sets `Vmax = Pi + 1` after DMPO).
    ///
    /// The builder invariant — both extrema finite, `Vmax ≥ Vmin` — is
    /// preserved: a non-finite value is ignored, and `Vmin` is clamped
    /// down when the new peak undercuts it. The quality layer treats a
    /// violated invariant as a programming error (it panics), so it must
    /// be unrepresentable here, not merely discouraged.
    pub fn set_vmax(&mut self, vmax: f64) {
        if vmax.is_finite() {
            self.vmax = vmax;
            self.vmin = self.vmin.min(vmax);
        }
    }

    /// Overrides `Vmin` (same invariant handling as [`IoTask::set_vmax`]:
    /// non-finite values are ignored, `Vmax` is raised to cover the new
    /// floor).
    pub fn set_vmin(&mut self, vmin: f64) {
        if vmin.is_finite() {
            self.vmin = vmin;
            self.vmax = self.vmax.max(vmin);
        }
    }
}

/// Builder for [`IoTask`]; see the [module documentation](self) for an
/// example.
#[derive(Debug, Clone)]
pub struct IoTaskBuilder {
    id: TaskId,
    device: DeviceId,
    wcet: Duration,
    period: Duration,
    deadline: Option<Duration>,
    priority: Priority,
    ideal_offset: Duration,
    margin: Duration,
    vmax: f64,
    vmin: f64,
    release_offset: Duration,
    tenant: TenantId,
}

impl IoTaskBuilder {
    /// Sets the worst-case device operation time `Ci`.
    #[must_use]
    pub fn wcet(mut self, wcet: Duration) -> Self {
        self.wcet = wcet;
        self
    }

    /// Sets the period `Ti`.
    #[must_use]
    pub fn period(mut self, period: Duration) -> Self {
        self.period = period;
        self
    }

    /// Sets an explicit relative deadline `Di` (defaults to the period).
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the fixed priority `Pi`.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the ideal start offset `δi`.
    #[must_use]
    pub fn ideal_offset(mut self, offset: Duration) -> Self {
        self.ideal_offset = offset;
        self
    }

    /// Sets the timing margin `θi`.
    #[must_use]
    pub fn margin(mut self, margin: Duration) -> Self {
        self.margin = margin;
        self
    }

    /// Sets the quality extrema (`Vmax`, `Vmin`).
    #[must_use]
    pub fn quality(mut self, vmax: f64, vmin: f64) -> Self {
        self.vmax = vmax;
        self.vmin = vmin;
        self
    }

    /// Sets the release offset `Oi` (§III.C; must be smaller than the
    /// period).
    #[must_use]
    pub fn release_offset(mut self, offset: Duration) -> Self {
        self.release_offset = offset;
        self
    }

    /// Sets the owning tenant (defaults to [`TenantId::ANONYMOUS`]).
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Validates and builds the task.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateTaskError`] if any model invariant is violated:
    /// `Ci > 0`, `Ti > 0`, `Ci ≤ Di ≤ Ti`, `δi + Ci ≤ Di` (a job starting at
    /// its ideal instant can still meet its deadline), `δi ≥ θi` and
    /// `δi + θi ≤ Di` (the quality window lies inside the release window),
    /// `Vmax ≥ Vmin`, and both quality values are finite.
    ///
    /// The paper's evaluation additionally enforces `θi ≥ Ci`; that is a
    /// workload-generation choice (`tagio-workload` applies it), not a model
    /// invariant, so the builder permits `θi < Ci`.
    pub fn build(self) -> Result<IoTask, ValidateTaskError> {
        let IoTaskBuilder {
            id,
            device,
            wcet,
            period,
            deadline,
            priority,
            ideal_offset,
            margin,
            vmax,
            vmin,
            release_offset,
            tenant,
        } = self;
        let deadline = deadline.unwrap_or(period);
        if wcet.is_zero() {
            return Err(ValidateTaskError::new(id, "wcet must be positive"));
        }
        if period.is_zero() {
            return Err(ValidateTaskError::new(id, "period must be positive"));
        }
        if deadline > period {
            return Err(ValidateTaskError::new(id, "deadline exceeds period"));
        }
        if wcet > deadline {
            return Err(ValidateTaskError::new(id, "wcet exceeds deadline"));
        }
        if ideal_offset + wcet > deadline {
            return Err(ValidateTaskError::new(
                id,
                "ideal start leaves no room to complete before the deadline",
            ));
        }
        if margin > ideal_offset {
            return Err(ValidateTaskError::new(
                id,
                "margin extends before the release (requires delta >= theta)",
            ));
        }
        if ideal_offset + margin > deadline {
            return Err(ValidateTaskError::new(
                id,
                "margin extends past the deadline (requires delta + theta <= D)",
            ));
        }
        if !vmax.is_finite() || !vmin.is_finite() || vmax < vmin {
            return Err(ValidateTaskError::new(
                id,
                "quality extrema must be finite with vmax >= vmin",
            ));
        }
        if release_offset >= period {
            return Err(ValidateTaskError::new(
                id,
                "release offset must be smaller than the period",
            ));
        }
        Ok(IoTask {
            id,
            device,
            wcet,
            period,
            deadline,
            priority,
            ideal_offset,
            margin,
            vmax,
            vmin,
            release_offset,
            tenant,
        })
    }
}

/// An ordered collection of I/O tasks `Γ = {τ1 … τn}`.
///
/// Tasks keep their insertion order; task ids must be unique.
///
/// ```
/// use tagio_core::task::{IoTask, TaskId, DeviceId, TaskSet};
/// use tagio_core::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut set = TaskSet::new();
/// set.push(
///     IoTask::builder(TaskId(0), DeviceId(0))
///         .wcet(Duration::from_micros(100))
///         .period(Duration::from_millis(4))
///         .ideal_offset(Duration::from_millis(1))
///         .margin(Duration::from_micros(1000))
///         .build()?,
/// )?;
/// assert_eq!(set.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<IoTask>,
}

impl TaskSet {
    /// Creates an empty task set.
    #[must_use]
    pub fn new() -> Self {
        TaskSet { tasks: Vec::new() }
    }

    /// Adds a task.
    ///
    /// # Errors
    /// Returns [`ValidateTaskError`] if a task with the same id exists.
    pub fn push(&mut self, task: IoTask) -> Result<(), ValidateTaskError> {
        if self.tasks.iter().any(|t| t.id() == task.id()) {
            return Err(ValidateTaskError::new(task.id(), "duplicate task id"));
        }
        self.tasks.push(task);
        Ok(())
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the set holds no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over tasks in insertion order.
    pub fn iter(&self) -> core::slice::Iter<'_, IoTask> {
        self.tasks.iter()
    }

    /// Looks up a task by id.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&IoTask> {
        self.tasks.iter().find(|t| t.id() == id)
    }

    /// Total utilisation `U = Σ Ci/Ti`.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        self.tasks.iter().map(IoTask::utilisation).sum()
    }

    /// The hyper-period (LCM of all periods).
    ///
    /// Returns [`Duration::ZERO`] for an empty set.
    #[must_use]
    pub fn hyperperiod(&self) -> Duration {
        self.tasks
            .iter()
            .map(IoTask::period)
            .reduce(lcm)
            .unwrap_or(Duration::ZERO)
    }

    /// Assigns deadline-monotonic priorities: the shortest relative deadline
    /// receives the highest priority (largest numeric value), ties broken by
    /// task id (smaller id wins). Also sets `Vmax = Pi + 1` as in the paper's
    /// evaluation (§V.A), leaving `Vmin` untouched.
    pub fn assign_dmpo(&mut self) {
        let mut order: Vec<usize> = (0..self.tasks.len()).collect();
        // Longest deadline first => gets the lowest priority value 0.
        order.sort_by(|&a, &b| {
            self.tasks[b]
                .deadline()
                .cmp(&self.tasks[a].deadline())
                .then(self.tasks[b].id().cmp(&self.tasks[a].id()))
        });
        for (level, idx) in order.into_iter().enumerate() {
            let p = Priority(level as u32);
            self.tasks[idx].set_priority(p);
            let vmax = f64::from(p.0) + 1.0;
            self.tasks[idx].set_vmax(vmax);
        }
    }

    /// Sets a common `Vmin` on every task (the paper uses a global
    /// `Vmin = 1`).
    pub fn set_global_vmin(&mut self, vmin: f64) {
        for t in &mut self.tasks {
            t.set_vmin(vmin);
        }
    }

    /// Splits the set into per-device partitions (fully-partitioned model,
    /// paper §III). Partitions are keyed by [`DeviceId`] and preserve task
    /// order.
    #[must_use]
    pub fn partitions(&self) -> BTreeMap<DeviceId, TaskSet> {
        let mut map: BTreeMap<DeviceId, TaskSet> = BTreeMap::new();
        for t in &self.tasks {
            map.entry(t.device()).or_default().tasks.push(t.clone());
        }
        map
    }
}

impl FromIterator<IoTask> for TaskSet {
    /// Collects tasks into a set.
    ///
    /// # Panics
    /// Panics on duplicate task ids; use [`TaskSet::push`] for fallible
    /// insertion.
    fn from_iter<I: IntoIterator<Item = IoTask>>(iter: I) -> Self {
        let mut set = TaskSet::new();
        for t in iter {
            set.push(t).expect("duplicate task id in FromIterator");
        }
        set
    }
}

impl Extend<IoTask> for TaskSet {
    /// # Panics
    /// Panics on duplicate task ids.
    fn extend<I: IntoIterator<Item = IoTask>>(&mut self, iter: I) {
        for t in iter {
            self.push(t).expect("duplicate task id in Extend");
        }
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a IoTask;
    type IntoIter = core::slice::Iter<'a, IoTask>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

impl IntoIterator for TaskSet {
    type Item = IoTask;
    type IntoIter = std::vec::IntoIter<IoTask>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u32, period_ms: u64, wcet_us: u64) -> IoTask {
        IoTask::builder(TaskId(id), DeviceId(0))
            .wcet(Duration::from_micros(wcet_us))
            .period(Duration::from_millis(period_ms))
            .ideal_offset(Duration::from_millis(period_ms) / 2)
            .margin(Duration::from_millis(period_ms) / 4)
            .build()
            .expect("valid test task")
    }

    #[test]
    fn builder_defaults_implicit_deadline() {
        let t = task(0, 10, 100);
        assert_eq!(t.deadline(), t.period());
        assert_eq!(t.device(), DeviceId(0));
    }

    #[test]
    fn builder_rejects_zero_wcet() {
        let err = IoTask::builder(TaskId(1), DeviceId(0))
            .period(Duration::from_millis(1))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("wcet"));
    }

    #[test]
    fn builder_rejects_zero_period() {
        assert!(IoTask::builder(TaskId(1), DeviceId(0))
            .wcet(Duration::from_micros(1))
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_deadline_longer_than_period() {
        assert!(IoTask::builder(TaskId(1), DeviceId(0))
            .wcet(Duration::from_micros(1))
            .period(Duration::from_millis(1))
            .deadline(Duration::from_millis(2))
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_margin_before_release() {
        // delta < theta: quality window would start before the release.
        assert!(IoTask::builder(TaskId(1), DeviceId(0))
            .wcet(Duration::from_micros(10))
            .period(Duration::from_millis(1))
            .ideal_offset(Duration::from_micros(50))
            .margin(Duration::from_micros(100))
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_margin_past_deadline() {
        assert!(IoTask::builder(TaskId(1), DeviceId(0))
            .wcet(Duration::from_micros(10))
            .period(Duration::from_millis(1))
            .ideal_offset(Duration::from_micros(950))
            .margin(Duration::from_micros(100))
            .build()
            .is_err());
    }

    #[test]
    fn quality_overrides_preserve_the_builder_invariant() {
        let mut t = IoTask::builder(TaskId(0), DeviceId(0))
            .wcet(Duration::from_micros(10))
            .period(Duration::from_millis(1))
            .ideal_offset(Duration::from_micros(500))
            .margin(Duration::from_micros(100))
            .quality(5.0, 2.0)
            .build()
            .unwrap();
        // Non-finite overrides are ignored outright.
        t.set_vmax(f64::NAN);
        t.set_vmax(f64::INFINITY);
        t.set_vmin(f64::NEG_INFINITY);
        assert_eq!((t.vmax(), t.vmin()), (5.0, 2.0));
        // Crossing overrides drag the other extremum along.
        t.set_vmax(1.0);
        assert_eq!((t.vmax(), t.vmin()), (1.0, 1.0));
        t.set_vmin(3.0);
        assert_eq!((t.vmax(), t.vmin()), (3.0, 3.0));
    }

    #[test]
    fn retarget_moves_only_the_device() {
        let t = IoTask::builder(TaskId(3), DeviceId(0))
            .wcet(Duration::from_micros(10))
            .period(Duration::from_millis(1))
            .ideal_offset(Duration::from_micros(500))
            .margin(Duration::from_micros(100))
            .build()
            .unwrap();
        let moved = t.retarget(DeviceId(7));
        assert_eq!(moved.device(), DeviceId(7));
        assert_eq!(moved.id(), t.id());
        assert_eq!(moved.wcet(), t.wcet());
        assert_eq!(moved.period(), t.period());
        assert_eq!(moved.ideal_offset(), t.ideal_offset());
    }

    #[test]
    fn builder_permits_margin_below_wcet() {
        // theta >= C is an evaluation-setup rule, not a model invariant.
        assert!(IoTask::builder(TaskId(1), DeviceId(0))
            .wcet(Duration::from_micros(300))
            .period(Duration::from_millis(1))
            .ideal_offset(Duration::from_micros(500))
            .margin(Duration::from_micros(200))
            .build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_ideal_start_too_late() {
        assert!(IoTask::builder(TaskId(1), DeviceId(0))
            .wcet(Duration::from_micros(200))
            .period(Duration::from_millis(1))
            .ideal_offset(Duration::from_micros(900))
            .margin(Duration::from_micros(0))
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_inverted_quality() {
        assert!(IoTask::builder(TaskId(1), DeviceId(0))
            .wcet(Duration::from_micros(10))
            .period(Duration::from_millis(1))
            .ideal_offset(Duration::from_micros(500))
            .margin(Duration::from_micros(100))
            .quality(0.0, 1.0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_offset_at_or_past_period() {
        assert!(IoTask::builder(TaskId(1), DeviceId(0))
            .wcet(Duration::from_micros(10))
            .period(Duration::from_millis(1))
            .ideal_offset(Duration::from_micros(500))
            .margin(Duration::from_micros(100))
            .release_offset(Duration::from_millis(1))
            .build()
            .is_err());
    }

    #[test]
    fn builder_accepts_offset_within_period() {
        let t = IoTask::builder(TaskId(1), DeviceId(0))
            .wcet(Duration::from_micros(10))
            .period(Duration::from_millis(1))
            .ideal_offset(Duration::from_micros(500))
            .margin(Duration::from_micros(100))
            .release_offset(Duration::from_micros(999))
            .build()
            .unwrap();
        assert_eq!(t.release_offset(), Duration::from_micros(999));
    }

    #[test]
    fn utilisation_is_c_over_t() {
        let t = task(0, 10, 1000); // 1ms / 10ms
        assert!((t.utilisation() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn taskset_rejects_duplicate_ids() {
        let mut set = TaskSet::new();
        set.push(task(0, 10, 100)).unwrap();
        assert!(set.push(task(0, 20, 100)).is_err());
    }

    #[test]
    fn hyperperiod_is_lcm_of_periods() {
        let set: TaskSet = vec![task(0, 10, 100), task(1, 12, 100), task(2, 15, 100)]
            .into_iter()
            .collect();
        assert_eq!(set.hyperperiod(), Duration::from_millis(60));
    }

    #[test]
    fn hyperperiod_of_empty_set_is_zero() {
        assert_eq!(TaskSet::new().hyperperiod(), Duration::ZERO);
    }

    #[test]
    fn dmpo_orders_by_deadline_and_sets_vmax() {
        let mut set: TaskSet = vec![task(0, 40, 100), task(1, 10, 100), task(2, 20, 100)]
            .into_iter()
            .collect();
        set.assign_dmpo();
        let p0 = set.get(TaskId(0)).unwrap().priority();
        let p1 = set.get(TaskId(1)).unwrap().priority();
        let p2 = set.get(TaskId(2)).unwrap().priority();
        // Shortest deadline (task 1, 10ms) gets the highest priority value.
        assert!(p1 > p2 && p2 > p0);
        assert_eq!(set.get(TaskId(1)).unwrap().vmax(), f64::from(p1.0) + 1.0);
    }

    #[test]
    fn dmpo_breaks_ties_by_task_id() {
        let mut set: TaskSet = vec![task(3, 10, 100), task(1, 10, 100)]
            .into_iter()
            .collect();
        set.assign_dmpo();
        assert!(
            set.get(TaskId(1)).unwrap().priority() > set.get(TaskId(3)).unwrap().priority(),
            "equal deadlines: smaller id wins"
        );
    }

    #[test]
    fn partitions_group_by_device() {
        let mut set = TaskSet::new();
        let mk = |id: u32, dev: u32| {
            IoTask::builder(TaskId(id), DeviceId(dev))
                .wcet(Duration::from_micros(100))
                .period(Duration::from_millis(10))
                .ideal_offset(Duration::from_millis(5))
                .margin(Duration::from_micros(2500))
                .build()
                .unwrap()
        };
        set.push(mk(0, 0)).unwrap();
        set.push(mk(1, 1)).unwrap();
        set.push(mk(2, 0)).unwrap();
        let parts = set.partitions();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[&DeviceId(0)].len(), 2);
        assert_eq!(parts[&DeviceId(1)].len(), 1);
    }

    #[test]
    fn set_global_vmin_applies_to_all() {
        let mut set: TaskSet = vec![task(0, 10, 100), task(1, 20, 100)]
            .into_iter()
            .collect();
        set.set_global_vmin(1.0);
        assert!(set.iter().all(|t| t.vmin() == 1.0));
    }

    #[test]
    fn taskset_utilisation_sums_tasks() {
        let set: TaskSet = vec![task(0, 10, 1000), task(1, 10, 2000)]
            .into_iter()
            .collect();
        assert!((set.utilisation() - 0.3).abs() < 1e-12);
    }
}
