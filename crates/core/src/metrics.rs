//! The paper's I/O performance metrics.
//!
//! * **Ψ (psi)** — Eq. (1): the fraction of jobs that start *exactly* at
//!   their ideal instant, `Ψ = |E| / |λ|` with
//!   `E = {λi^j | Ti·j + δi − κi^j = 0}`.
//! * **Υ (upsilon)** — Eq. (2): the overall timing-accuracy performance,
//!   `Υ = Σ V(κ) / Σ V(δ)` — aggregate achieved quality normalised by the
//!   aggregate peak quality.
//!
//! Both are computed from a [`Schedule`] against the [`JobSet`] it schedules;
//! callers should [`Schedule::validate`] first (the metrics do not re-check
//! feasibility, and jobs missing from the schedule simply contribute zero
//! achieved quality).

use crate::job::JobSet;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// Ψ (Eq. (1)): fraction of jobs with exact timing-accurate control.
///
/// Returns 1.0 for an empty job set (vacuously all-exact).
///
/// ```
/// use tagio_core::{metrics, job::JobSet, schedule::Schedule};
/// # use tagio_core::{task::*, time::*, schedule::entry_for};
/// # let set: TaskSet = vec![IoTask::builder(TaskId(0), DeviceId(0))
/// #     .wcet(Duration::from_micros(100)).period(Duration::from_millis(4))
/// #     .ideal_offset(Duration::from_millis(2)).margin(Duration::from_millis(1))
/// #     .build().unwrap()].into_iter().collect();
/// # let jobs = JobSet::expand(&set);
/// # let job = &jobs.as_slice()[0];
/// let schedule: Schedule = vec![entry_for(job, job.ideal_start())].into_iter().collect();
/// assert_eq!(metrics::psi(&schedule, &jobs), 1.0);
/// ```
#[must_use]
pub fn psi(schedule: &Schedule, jobs: &JobSet) -> f64 {
    if jobs.is_empty() {
        return 1.0;
    }
    let exact = jobs
        .iter()
        .filter(|j| schedule.start_of(j.id()) == Some(j.ideal_start()))
        .count();
    exact as f64 / jobs.len() as f64
}

/// Υ (Eq. (2)): aggregate achieved quality normalised by aggregate peak
/// quality.
///
/// Jobs absent from the schedule contribute zero achieved quality. Returns
/// 1.0 for an empty job set, and 0.0 if the aggregate peak quality is not a
/// positive number (degenerate task sets).
#[must_use]
pub fn upsilon(schedule: &Schedule, jobs: &JobSet) -> f64 {
    if jobs.is_empty() {
        return 1.0;
    }
    let peak = jobs.peak_quality();
    if peak <= 0.0 || peak.is_nan() {
        return 0.0;
    }
    let achieved: f64 = jobs
        .iter()
        .filter_map(|j| schedule.start_of(j.id()).map(|s| j.quality_at(s)))
        .sum();
    achieved / peak
}

/// Distributional statistics of timing-accuracy error `|κ − ideal|`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccuracyStats {
    /// Total jobs considered.
    pub total: usize,
    /// Jobs scheduled exactly at their ideal instant.
    pub exact: usize,
    /// Jobs scheduled inside their quality window `[δ−θ, δ+θ]`.
    pub within_window: usize,
    /// Mean absolute error in microseconds.
    pub mean_abs_error_us: f64,
    /// Maximum absolute error in microseconds.
    pub max_abs_error_us: u64,
}

impl AccuracyStats {
    /// Computes error statistics for `schedule` against `jobs`.
    ///
    /// Jobs missing from the schedule are counted in `total` but excluded
    /// from the error aggregates.
    #[must_use]
    pub fn compute(schedule: &Schedule, jobs: &JobSet) -> Self {
        let mut stats = AccuracyStats {
            total: jobs.len(),
            ..AccuracyStats::default()
        };
        let mut err_sum: u128 = 0;
        let mut err_count: usize = 0;
        for job in jobs {
            let Some(start) = schedule.start_of(job.id()) else {
                continue;
            };
            let err = start.abs_diff(job.ideal_start()).as_micros();
            err_sum += u128::from(err);
            err_count += 1;
            stats.max_abs_error_us = stats.max_abs_error_us.max(err);
            if err == 0 {
                stats.exact += 1;
            }
            if start.abs_diff(job.ideal_start()) <= job.margin() {
                stats.within_window += 1;
            }
        }
        if err_count > 0 {
            stats.mean_abs_error_us = err_sum as f64 / err_count as f64;
        }
        stats
    }

    /// Ψ as derivable from these statistics (`exact / total`; 1.0 when
    /// empty).
    #[must_use]
    pub fn psi(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.exact as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSet;
    use crate::schedule::entry_for;
    use crate::task::{DeviceId, IoTask, TaskId, TaskSet};
    use crate::time::Duration;

    fn two_task_jobs() -> JobSet {
        let set: TaskSet = vec![
            IoTask::builder(TaskId(0), DeviceId(0))
                .wcet(Duration::from_micros(100))
                .period(Duration::from_millis(4))
                .ideal_offset(Duration::from_millis(2))
                .margin(Duration::from_millis(1))
                .quality(2.0, 1.0)
                .build()
                .unwrap(),
            IoTask::builder(TaskId(1), DeviceId(0))
                .wcet(Duration::from_micros(100))
                .period(Duration::from_millis(4))
                .ideal_offset(Duration::from_millis(1))
                .margin(Duration::from_micros(500))
                .quality(3.0, 1.0)
                .build()
                .unwrap(),
        ]
        .into_iter()
        .collect();
        JobSet::expand(&set)
    }

    #[test]
    fn psi_counts_exact_starts_only() {
        let jobs = two_task_jobs();
        let a = jobs.get(crate::job::JobId::new(TaskId(0), 0)).unwrap();
        let b = jobs.get(crate::job::JobId::new(TaskId(1), 0)).unwrap();
        let s: Schedule = vec![
            entry_for(a, a.ideal_start()),
            entry_for(b, b.ideal_start() + Duration::from_micros(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(psi(&s, &jobs), 0.5);
    }

    #[test]
    fn psi_of_empty_jobset_is_one() {
        let jobs = JobSet::from_jobs(vec![], Duration::from_millis(1));
        assert_eq!(psi(&Schedule::new(), &jobs), 1.0);
    }

    #[test]
    fn upsilon_is_one_for_all_ideal() {
        let jobs = two_task_jobs();
        let s: Schedule = jobs.iter().map(|j| entry_for(j, j.ideal_start())).collect();
        assert!((upsilon(&s, &jobs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn upsilon_degrades_with_distance() {
        let jobs = two_task_jobs();
        let s_ideal: Schedule = jobs.iter().map(|j| entry_for(j, j.ideal_start())).collect();
        let s_late: Schedule = jobs
            .iter()
            .map(|j| entry_for(j, j.ideal_start() + Duration::from_micros(400)))
            .collect();
        assert!(upsilon(&s_late, &jobs) < upsilon(&s_ideal, &jobs));
        assert!(upsilon(&s_late, &jobs) > 0.0);
    }

    #[test]
    fn upsilon_floor_is_vmin_ratio() {
        let jobs = two_task_jobs();
        // Schedule everything far outside its window (but still; metrics do
        // not check feasibility).
        let s: Schedule = jobs
            .iter()
            .map(|j| entry_for(j, j.ideal_start() + Duration::from_millis(50)))
            .collect();
        // peak = 2+3, floor = 1+1
        assert!((upsilon(&s, &jobs) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn unscheduled_jobs_contribute_zero_quality() {
        let jobs = two_task_jobs();
        let a = jobs.get(crate::job::JobId::new(TaskId(0), 0)).unwrap();
        let s: Schedule = vec![entry_for(a, a.ideal_start())].into_iter().collect();
        // achieved = 2 (task0 at peak), peak total = 5
        assert!((upsilon(&s, &jobs) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_stats_aggregate_errors() {
        let jobs = two_task_jobs();
        let a = jobs.get(crate::job::JobId::new(TaskId(0), 0)).unwrap();
        let b = jobs.get(crate::job::JobId::new(TaskId(1), 0)).unwrap();
        let s: Schedule = vec![
            entry_for(a, a.ideal_start()),
            entry_for(b, b.ideal_start() + Duration::from_micros(600)),
        ]
        .into_iter()
        .collect();
        let stats = AccuracyStats::compute(&s, &jobs);
        assert_eq!(stats.total, 2);
        assert_eq!(stats.exact, 1);
        // task1's margin is 500us, the 600us error is outside the window
        assert_eq!(stats.within_window, 1);
        assert_eq!(stats.max_abs_error_us, 600);
        assert!((stats.mean_abs_error_us - 300.0).abs() < 1e-12);
        assert_eq!(stats.psi(), 0.5);
    }

    #[test]
    fn accuracy_stats_empty_schedule() {
        let jobs = two_task_jobs();
        let stats = AccuracyStats::compute(&Schedule::new(), &jobs);
        assert_eq!(stats.total, 2);
        assert_eq!(stats.exact, 0);
        assert_eq!(stats.mean_abs_error_us, 0.0);
    }

    #[test]
    fn exact_schedule_means_window_hit_too() {
        let jobs = two_task_jobs();
        let s: Schedule = jobs.iter().map(|j| entry_for(j, j.ideal_start())).collect();
        let stats = AccuracyStats::compute(&s, &jobs);
        assert_eq!(stats.exact, stats.total);
        assert_eq!(stats.within_window, stats.total);
        assert_eq!(stats.max_abs_error_us, 0);
    }
}
