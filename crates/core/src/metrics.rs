//! The paper's I/O performance metrics.
//!
//! * **Ψ (psi)** — Eq. (1): the fraction of jobs that start *exactly* at
//!   their ideal instant, `Ψ = |E| / |λ|` with
//!   `E = {λi^j | Ti·j + δi − κi^j = 0}`.
//! * **Υ (upsilon)** — Eq. (2): the overall timing-accuracy performance,
//!   `Υ = Σ V(κ) / Σ V(δ)` — aggregate achieved quality normalised by the
//!   aggregate peak quality.
//!
//! Both are computed from a [`Schedule`] against the [`JobSet`] it schedules;
//! callers should [`Schedule::validate`] first (the metrics do not re-check
//! feasibility, and jobs missing from the schedule simply contribute zero
//! achieved quality).
//!
//! The module also hosts the shared stats-emission vocabulary: every
//! counter struct in the workspace (`OnlineStats`, `FleetStats`,
//! `Summary`, `MethodStats`, …) implements the [`Metrics`] trait, so
//! partition aggregation and the experiment binaries all fold and emit
//! the same named-metric schema — a [`MetricSet`] — instead of each
//! hand-rolling its own.

use crate::job::JobSet;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// An ordered collection of named scalar metrics: the one emission schema
/// shared by every [`Metrics`] implementor. Names keep first-push order
/// (the order reports render them in); duplicate names are not collapsed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    entries: Vec<(String, f64)>,
}

impl MetricSet {
    /// An empty metric set.
    #[must_use]
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Appends one named metric sample.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        self.entries.push((name.into(), value));
    }

    /// The first metric named `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Number of metrics held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The metrics, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }
}

impl FromIterator<(String, f64)> for MetricSet {
    fn from_iter<T: IntoIterator<Item = (String, f64)>>(iter: T) -> Self {
        MetricSet {
            entries: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for MetricSet {
    type Item = (String, f64);
    type IntoIter = std::vec::IntoIter<(String, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// The unified stats surface: anything that can fold a peer of its own
/// type into itself and report its state as named scalars.
///
/// `merge` must be commutative up to counter arithmetic (fleet partition
/// aggregation folds in partition-id order, but the totals must not
/// depend on it); `snapshot` must be cheap and side-effect free.
pub trait Metrics {
    /// Folds `other`'s counters into `self`.
    fn merge(&mut self, other: &Self);

    /// The current state as an ordered named-metric schema.
    fn snapshot(&self) -> MetricSet;
}

/// Sorted `(job, start)` lookup table over a schedule's entries.
///
/// Every metric below resolves one schedule entry per job; going through
/// [`Schedule::start_of`] makes that a linear scan per job — quadratic
/// over the whole set, and these metrics garnish every admission verdict
/// on the online hot path. One `O(n log n)` sort turns each lookup into
/// a binary search. Entries arrive in start order and the sort key is
/// `(job, start)`, so the first match for a job is its earliest entry —
/// exactly what `start_of`'s first-found scan returns.
fn start_index(schedule: &Schedule) -> Vec<(crate::job::JobId, crate::time::Time)> {
    let mut index: Vec<_> = schedule.iter().map(|e| (e.job, e.start)).collect();
    index.sort_unstable();
    index
}

fn indexed_start(
    index: &[(crate::job::JobId, crate::time::Time)],
    job: crate::job::JobId,
) -> Option<crate::time::Time> {
    let pos = index.partition_point(|&(j, _)| j < job);
    match index.get(pos) {
        Some(&(j, start)) if j == job => Some(start),
        _ => None,
    }
}

/// Ψ (Eq. (1)): fraction of jobs with exact timing-accurate control.
///
/// Returns 1.0 for an empty job set (vacuously all-exact).
///
/// ```
/// use tagio_core::{metrics, job::JobSet, schedule::Schedule};
/// # use tagio_core::{task::*, time::*, schedule::entry_for};
/// # let set: TaskSet = vec![IoTask::builder(TaskId(0), DeviceId(0))
/// #     .wcet(Duration::from_micros(100)).period(Duration::from_millis(4))
/// #     .ideal_offset(Duration::from_millis(2)).margin(Duration::from_millis(1))
/// #     .build().unwrap()].into_iter().collect();
/// # let jobs = JobSet::expand(&set);
/// # let job = &jobs.as_slice()[0];
/// let schedule: Schedule = vec![entry_for(job, job.ideal_start())].into_iter().collect();
/// assert_eq!(metrics::psi(&schedule, &jobs), 1.0);
/// ```
#[must_use]
pub fn psi(schedule: &Schedule, jobs: &JobSet) -> f64 {
    if jobs.is_empty() {
        return 1.0;
    }
    let index = start_index(schedule);
    let exact = jobs
        .iter()
        .filter(|j| indexed_start(&index, j.id()) == Some(j.ideal_start()))
        .count();
    exact as f64 / jobs.len() as f64
}

/// Υ (Eq. (2)): aggregate achieved quality normalised by aggregate peak
/// quality.
///
/// Jobs absent from the schedule contribute zero achieved quality. Returns
/// 1.0 for an empty job set, and 0.0 if the aggregate peak quality is not a
/// positive number (degenerate task sets).
#[must_use]
pub fn upsilon(schedule: &Schedule, jobs: &JobSet) -> f64 {
    if jobs.is_empty() {
        return 1.0;
    }
    let peak = jobs.peak_quality();
    if peak <= 0.0 || peak.is_nan() {
        return 0.0;
    }
    let index = start_index(schedule);
    let achieved: f64 = jobs
        .iter()
        .filter_map(|j| indexed_start(&index, j.id()).map(|s| j.quality_at(s)))
        .sum();
    achieved / peak
}

/// Ψ and Υ in one pass over the job set.
///
/// Bit-identical to calling [`psi`] and [`upsilon`] separately (same
/// iteration order, same `f64` summation order), but touches each job's
/// schedule entry once instead of twice — the form the online service's
/// incremental quality cache refreshes through on its hot path.
#[must_use]
pub fn quality(schedule: &Schedule, jobs: &JobSet) -> (f64, f64) {
    if jobs.is_empty() {
        return (1.0, 1.0);
    }
    let mut exact = 0usize;
    // `Iterator::sum::<f64>()` folds from -0.0; start there so an empty
    // schedule yields the same bits as `upsilon`.
    let mut achieved = -0.0f64;
    let index = start_index(schedule);
    for job in jobs {
        if let Some(start) = indexed_start(&index, job.id()) {
            if start == job.ideal_start() {
                exact += 1;
            }
            achieved += job.quality_at(start);
        }
    }
    let psi = exact as f64 / jobs.len() as f64;
    let peak = jobs.peak_quality();
    let upsilon = if peak <= 0.0 || peak.is_nan() {
        0.0
    } else {
        achieved / peak
    };
    (psi, upsilon)
}

/// Distributional statistics of timing-accuracy error `|κ − ideal|`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccuracyStats {
    /// Total jobs considered.
    pub total: usize,
    /// Jobs scheduled exactly at their ideal instant.
    pub exact: usize,
    /// Jobs scheduled inside their quality window `[δ−θ, δ+θ]`.
    pub within_window: usize,
    /// Mean absolute error in microseconds.
    pub mean_abs_error_us: f64,
    /// Maximum absolute error in microseconds.
    pub max_abs_error_us: u64,
}

impl AccuracyStats {
    /// Computes error statistics for `schedule` against `jobs`.
    ///
    /// Jobs missing from the schedule are counted in `total` but excluded
    /// from the error aggregates.
    #[must_use]
    pub fn compute(schedule: &Schedule, jobs: &JobSet) -> Self {
        let mut stats = AccuracyStats {
            total: jobs.len(),
            ..AccuracyStats::default()
        };
        let mut err_sum: u128 = 0;
        let mut err_count: usize = 0;
        let index = start_index(schedule);
        for job in jobs {
            let Some(start) = indexed_start(&index, job.id()) else {
                continue;
            };
            let err = start.abs_diff(job.ideal_start()).as_micros();
            err_sum += u128::from(err);
            err_count += 1;
            stats.max_abs_error_us = stats.max_abs_error_us.max(err);
            if err == 0 {
                stats.exact += 1;
            }
            if start.abs_diff(job.ideal_start()) <= job.margin() {
                stats.within_window += 1;
            }
        }
        if err_count > 0 {
            stats.mean_abs_error_us = err_sum as f64 / err_count as f64;
        }
        stats
    }

    /// Ψ as derivable from these statistics (`exact / total`; 1.0 when
    /// empty).
    #[must_use]
    pub fn psi(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.exact as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSet;
    use crate::schedule::entry_for;
    use crate::task::{DeviceId, IoTask, TaskId, TaskSet};
    use crate::time::Duration;

    fn two_task_jobs() -> JobSet {
        let set: TaskSet = vec![
            IoTask::builder(TaskId(0), DeviceId(0))
                .wcet(Duration::from_micros(100))
                .period(Duration::from_millis(4))
                .ideal_offset(Duration::from_millis(2))
                .margin(Duration::from_millis(1))
                .quality(2.0, 1.0)
                .build()
                .unwrap(),
            IoTask::builder(TaskId(1), DeviceId(0))
                .wcet(Duration::from_micros(100))
                .period(Duration::from_millis(4))
                .ideal_offset(Duration::from_millis(1))
                .margin(Duration::from_micros(500))
                .quality(3.0, 1.0)
                .build()
                .unwrap(),
        ]
        .into_iter()
        .collect();
        JobSet::expand(&set)
    }

    #[test]
    fn psi_counts_exact_starts_only() {
        let jobs = two_task_jobs();
        let a = jobs.get(crate::job::JobId::new(TaskId(0), 0)).unwrap();
        let b = jobs.get(crate::job::JobId::new(TaskId(1), 0)).unwrap();
        let s: Schedule = vec![
            entry_for(a, a.ideal_start()),
            entry_for(b, b.ideal_start() + Duration::from_micros(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(psi(&s, &jobs), 0.5);
    }

    #[test]
    fn psi_of_empty_jobset_is_one() {
        let jobs = JobSet::from_jobs(vec![], Duration::from_millis(1));
        assert_eq!(psi(&Schedule::new(), &jobs), 1.0);
    }

    #[test]
    fn upsilon_is_one_for_all_ideal() {
        let jobs = two_task_jobs();
        let s: Schedule = jobs.iter().map(|j| entry_for(j, j.ideal_start())).collect();
        assert!((upsilon(&s, &jobs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn upsilon_degrades_with_distance() {
        let jobs = two_task_jobs();
        let s_ideal: Schedule = jobs.iter().map(|j| entry_for(j, j.ideal_start())).collect();
        let s_late: Schedule = jobs
            .iter()
            .map(|j| entry_for(j, j.ideal_start() + Duration::from_micros(400)))
            .collect();
        assert!(upsilon(&s_late, &jobs) < upsilon(&s_ideal, &jobs));
        assert!(upsilon(&s_late, &jobs) > 0.0);
    }

    #[test]
    fn upsilon_floor_is_vmin_ratio() {
        let jobs = two_task_jobs();
        // Schedule everything far outside its window (but still; metrics do
        // not check feasibility).
        let s: Schedule = jobs
            .iter()
            .map(|j| entry_for(j, j.ideal_start() + Duration::from_millis(50)))
            .collect();
        // peak = 2+3, floor = 1+1
        assert!((upsilon(&s, &jobs) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn unscheduled_jobs_contribute_zero_quality() {
        let jobs = two_task_jobs();
        let a = jobs.get(crate::job::JobId::new(TaskId(0), 0)).unwrap();
        let s: Schedule = vec![entry_for(a, a.ideal_start())].into_iter().collect();
        // achieved = 2 (task0 at peak), peak total = 5
        assert!((upsilon(&s, &jobs) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn quality_is_bit_identical_to_psi_and_upsilon() {
        let jobs = two_task_jobs();
        let a = jobs.get(crate::job::JobId::new(TaskId(0), 0)).unwrap();
        let b = jobs.get(crate::job::JobId::new(TaskId(1), 0)).unwrap();
        // Mixed exact/late/missing entries exercise all three branches.
        let schedules: Vec<Schedule> = vec![
            jobs.iter().map(|j| entry_for(j, j.ideal_start())).collect(),
            vec![
                entry_for(a, a.ideal_start()),
                entry_for(b, b.ideal_start() + Duration::from_micros(400)),
            ]
            .into_iter()
            .collect(),
            vec![entry_for(a, a.ideal_start())].into_iter().collect(),
            Schedule::new(),
        ];
        for (i, s) in schedules.iter().enumerate() {
            let (p, u) = quality(s, &jobs);
            assert_eq!(p.to_bits(), psi(s, &jobs).to_bits(), "psi case {i}");
            assert_eq!(
                u.to_bits(),
                upsilon(s, &jobs).to_bits(),
                "upsilon case {i}: {u} vs {}",
                upsilon(s, &jobs)
            );
        }
        let empty = JobSet::from_jobs(vec![], Duration::from_millis(1));
        assert_eq!(quality(&Schedule::new(), &empty), (1.0, 1.0));
    }

    #[test]
    fn metric_set_keeps_order_and_looks_up() {
        let mut set = MetricSet::new();
        assert!(set.is_empty());
        set.push("arrivals", 4.0);
        set.push("admitted", 3.0);
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("admitted"), Some(3.0));
        assert_eq!(set.get("missing"), None);
        let names: Vec<&str> = set.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["arrivals", "admitted"]);
        let rebuilt: MetricSet = set.clone().into_iter().collect();
        assert_eq!(rebuilt, set);
    }

    #[test]
    fn metrics_trait_is_object_safe_enough_to_fold_through() {
        #[derive(Default)]
        struct Counter {
            hits: usize,
        }
        impl Metrics for Counter {
            fn merge(&mut self, other: &Self) {
                self.hits += other.hits;
            }
            fn snapshot(&self) -> MetricSet {
                let mut set = MetricSet::new();
                set.push("hits", self.hits as f64);
                set
            }
        }
        let mut total = Counter::default();
        for part in [Counter { hits: 2 }, Counter { hits: 3 }] {
            total.merge(&part);
        }
        assert_eq!(total.snapshot().get("hits"), Some(5.0));
    }

    #[test]
    fn accuracy_stats_aggregate_errors() {
        let jobs = two_task_jobs();
        let a = jobs.get(crate::job::JobId::new(TaskId(0), 0)).unwrap();
        let b = jobs.get(crate::job::JobId::new(TaskId(1), 0)).unwrap();
        let s: Schedule = vec![
            entry_for(a, a.ideal_start()),
            entry_for(b, b.ideal_start() + Duration::from_micros(600)),
        ]
        .into_iter()
        .collect();
        let stats = AccuracyStats::compute(&s, &jobs);
        assert_eq!(stats.total, 2);
        assert_eq!(stats.exact, 1);
        // task1's margin is 500us, the 600us error is outside the window
        assert_eq!(stats.within_window, 1);
        assert_eq!(stats.max_abs_error_us, 600);
        assert!((stats.mean_abs_error_us - 300.0).abs() < 1e-12);
        assert_eq!(stats.psi(), 0.5);
    }

    #[test]
    fn accuracy_stats_empty_schedule() {
        let jobs = two_task_jobs();
        let stats = AccuracyStats::compute(&Schedule::new(), &jobs);
        assert_eq!(stats.total, 2);
        assert_eq!(stats.exact, 0);
        assert_eq!(stats.mean_abs_error_us, 0.0);
    }

    #[test]
    fn exact_schedule_means_window_hit_too() {
        let jobs = two_task_jobs();
        let s: Schedule = jobs.iter().map(|j| entry_for(j, j.ideal_start())).collect();
        let stats = AccuracyStats::compute(&s, &jobs);
        assert_eq!(stats.exact, stats.total);
        assert_eq!(stats.within_window, stats.total);
        assert_eq!(stats.max_abs_error_us, 0);
    }
}
