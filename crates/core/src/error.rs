//! Error types for the core model.

use crate::job::JobId;
use crate::task::TaskId;
use crate::time::{Duration, Time};
use core::fmt;

/// A task definition violated a model invariant.
///
/// Produced by [`IoTaskBuilder::build`](crate::task::IoTaskBuilder::build)
/// and [`TaskSet::push`](crate::task::TaskSet::push).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateTaskError {
    task: TaskId,
    reason: &'static str,
}

impl ValidateTaskError {
    pub(crate) fn new(task: TaskId, reason: &'static str) -> Self {
        ValidateTaskError { task, reason }
    }

    /// The offending task.
    #[must_use]
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Human-readable reason.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for ValidateTaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid task {}: {}", self.task, self.reason)
    }
}

impl std::error::Error for ValidateTaskError {}

/// A schedule violated Constraint 1 or Constraint 2 (see
/// [`Schedule::validate`](crate::schedule::Schedule::validate)).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateScheduleError {
    /// A job of the set has no entry.
    MissingJob {
        /// The unscheduled job.
        job: JobId,
    },
    /// A job appears more than once.
    DuplicateJob {
        /// The duplicated job.
        job: JobId,
    },
    /// An entry refers to a job not in the set.
    UnknownJob {
        /// The foreign job.
        job: JobId,
    },
    /// An entry's duration differs from the job's WCET.
    WrongDuration {
        /// The job.
        job: JobId,
        /// The job's WCET.
        expected: Duration,
        /// The entry's duration.
        actual: Duration,
    },
    /// Constraint 1 lower bound: the job starts before its release.
    StartsBeforeRelease {
        /// The job.
        job: JobId,
        /// Scheduled start.
        start: Time,
        /// Release instant.
        release: Time,
    },
    /// Constraint 1 upper bound: the job completes after its deadline.
    MissesDeadline {
        /// The job.
        job: JobId,
        /// Completion instant.
        finish: Time,
        /// Absolute deadline.
        deadline: Time,
    },
    /// Constraint 2: two executions overlap on the device.
    Overlap {
        /// The earlier-starting job.
        first: JobId,
        /// The overlapping job.
        second: JobId,
    },
}

impl fmt::Display for ValidateScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingJob { job } => write!(f, "job {job} is not scheduled"),
            Self::DuplicateJob { job } => write!(f, "job {job} is scheduled more than once"),
            Self::UnknownJob { job } => write!(f, "schedule refers to unknown job {job}"),
            Self::WrongDuration {
                job,
                expected,
                actual,
            } => write!(
                f,
                "job {job} scheduled for {actual} but its wcet is {expected}"
            ),
            Self::StartsBeforeRelease {
                job,
                start,
                release,
            } => write!(
                f,
                "job {job} starts at {start} before its release {release}"
            ),
            Self::MissesDeadline {
                job,
                finish,
                deadline,
            } => write!(
                f,
                "job {job} finishes at {finish} after its deadline {deadline}"
            ),
            Self::Overlap { first, second } => {
                write!(f, "jobs {first} and {second} overlap on the device")
            }
        }
    }
}

impl std::error::Error for ValidateScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_error_displays_reason() {
        let e = ValidateTaskError::new(TaskId(3), "wcet must be positive");
        assert_eq!(e.task(), TaskId(3));
        assert!(e.to_string().contains("t3"));
        assert!(e.to_string().contains("wcet"));
    }

    #[test]
    fn schedule_error_displays_are_nonempty() {
        let job = JobId::new(TaskId(1), 2);
        let samples: Vec<ValidateScheduleError> = vec![
            ValidateScheduleError::MissingJob { job },
            ValidateScheduleError::DuplicateJob { job },
            ValidateScheduleError::UnknownJob { job },
            ValidateScheduleError::WrongDuration {
                job,
                expected: Duration::from_micros(5),
                actual: Duration::from_micros(6),
            },
            ValidateScheduleError::StartsBeforeRelease {
                job,
                start: Time::ZERO,
                release: Time::from_micros(1),
            },
            ValidateScheduleError::MissesDeadline {
                job,
                finish: Time::from_micros(2),
                deadline: Time::from_micros(1),
            },
            ValidateScheduleError::Overlap {
                first: job,
                second: JobId::new(TaskId(2), 0),
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<ValidateTaskError>();
        assert_bounds::<ValidateScheduleError>();
    }
}
