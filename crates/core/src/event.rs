//! Run-time system events for *online* scheduling.
//!
//! The paper's methods are offline: a task set is fixed, a schedule is
//! synthesised once, and the controller replays it forever. A deployed
//! system is not that static — timed I/O requests appear and disappear,
//! the application switches operating modes, and device operations take
//! longer under load. This module is the shared vocabulary for those
//! disturbances: a [`SystemEvent`] stream drives the online scheduling
//! service (`tagio-online`), which admits, repairs or sheds against a
//! live [`Schedule`](crate::schedule::Schedule).
//!
//! Events carry plain model types ([`IoTask`], [`TaskId`], [`DeviceId`])
//! so any layer — scenario generators, trace files, the controller
//! simulator — can produce or consume them without knowing the service.

use crate::task::{DeviceId, IoTask, TaskId};
use crate::time::Time;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of an operating mode (a named activation pattern over a
/// task pool).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ModeId(pub u32);

impl fmt::Display for ModeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An operating mode: which tasks of the service's known pool are active.
///
/// A mode change is a batch reconfiguration — tasks leaving the active set
/// depart, tasks entering it arrive (subject to admission control).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mode {
    /// The mode's identity.
    pub id: ModeId,
    /// Tasks active in this mode, by id. Order is irrelevant; duplicates
    /// are ignored by consumers.
    pub active: Vec<TaskId>,
}

/// One run-time disturbance against a live schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SystemEvent {
    /// A new timed I/O request stream asks to join the system. The online
    /// service runs admission control and either integrates the task into
    /// the running schedule or rejects it.
    Arrival(IoTask),
    /// An admitted task leaves; its jobs are removed from the schedule
    /// (trivially feasibility-preserving).
    Departure(TaskId),
    /// Switch to `mode`: departures for active tasks not in the mode,
    /// arrivals (re-admissions from the pool) for inactive ones that are.
    ModeChange(Mode),
    /// Device operations on `device` now take `percent`% of their nominal
    /// worst case (a value above 100 models overload, below 100 relief).
    /// The service re-validates and sheds load if the schedule no longer
    /// fits.
    UtilisationSpike {
        /// The affected partition.
        device: DeviceId,
        /// New WCET as a percentage of the *nominal* (admission-time)
        /// WCET. Clamped to at least 1 µs per task by consumers.
        percent: u32,
    },
}

impl SystemEvent {
    /// A short lowercase tag naming the event kind (used by trace formats
    /// and per-kind statistics).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SystemEvent::Arrival(_) => "arrival",
            SystemEvent::Departure(_) => "departure",
            SystemEvent::ModeChange(_) => "mode-change",
            SystemEvent::UtilisationSpike { .. } => "spike",
        }
    }
}

/// A [`SystemEvent`] stamped with its occurrence instant (relative to the
/// schedule epoch). Event traces are ordered by `at`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// When the event occurs.
    pub at: Time,
    /// What happens.
    pub event: SystemEvent,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn task(id: u32) -> IoTask {
        IoTask::builder(TaskId(id), DeviceId(0))
            .wcet(Duration::from_micros(100))
            .period(Duration::from_millis(4))
            .ideal_offset(Duration::from_millis(2))
            .margin(Duration::from_millis(1))
            .build()
            .unwrap()
    }

    #[test]
    fn kinds_name_every_variant() {
        assert_eq!(SystemEvent::Arrival(task(0)).kind(), "arrival");
        assert_eq!(SystemEvent::Departure(TaskId(0)).kind(), "departure");
        assert_eq!(
            SystemEvent::ModeChange(Mode {
                id: ModeId(1),
                active: vec![TaskId(0)],
            })
            .kind(),
            "mode-change"
        );
        assert_eq!(
            SystemEvent::UtilisationSpike {
                device: DeviceId(0),
                percent: 150,
            }
            .kind(),
            "spike"
        );
    }

    #[test]
    fn timed_events_order_by_instant() {
        let mut trace = [
            TimedEvent {
                at: Time::from_millis(9),
                event: SystemEvent::Departure(TaskId(1)),
            },
            TimedEvent {
                at: Time::from_millis(2),
                event: SystemEvent::Arrival(task(2)),
            },
        ];
        trace.sort_by_key(|e| e.at);
        assert_eq!(trace[0].at, Time::from_millis(2));
        assert_eq!(trace[0].event.kind(), "arrival");
    }

    #[test]
    fn mode_display_and_identity() {
        assert_eq!(ModeId(3).to_string(), "m3");
        let m = Mode {
            id: ModeId(0),
            active: vec![TaskId(1), TaskId(2)],
        };
        assert_eq!(m.clone(), m);
    }
}
