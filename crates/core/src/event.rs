//! Run-time system events for *online* scheduling.
//!
//! The paper's methods are offline: a task set is fixed, a schedule is
//! synthesised once, and the controller replays it forever. A deployed
//! system is not that static — timed I/O requests appear and disappear,
//! the application switches operating modes, and device operations take
//! longer under load. This module is the shared vocabulary for those
//! disturbances: a [`SystemEvent`] stream drives the online scheduling
//! service (`tagio-online`), which admits, repairs or sheds against a
//! live [`Schedule`](crate::schedule::Schedule).
//!
//! Events carry plain model types ([`IoTask`], [`TaskId`], [`DeviceId`])
//! so any layer — scenario generators, trace files, the controller
//! simulator — can produce or consume them without knowing the service.

use crate::task::{DeviceId, IoTask, TaskId, TenantId};
use crate::time::Time;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of an operating mode (a named activation pattern over a
/// task pool).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ModeId(pub u32);

impl fmt::Display for ModeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An operating mode: which tasks of the service's known pool are active.
///
/// A mode change is a batch reconfiguration — tasks leaving the active set
/// depart, tasks entering it arrive (subject to admission control).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mode {
    /// The mode's identity.
    pub id: ModeId,
    /// Tasks active in this mode, by id. Order is irrelevant; duplicates
    /// are ignored by consumers.
    pub active: Vec<TaskId>,
}

/// One run-time disturbance against a live schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SystemEvent {
    /// A new timed I/O request stream asks to join the system. The online
    /// service runs admission control and either integrates the task into
    /// the running schedule or rejects it.
    Arrival(IoTask),
    /// An admitted task leaves; its jobs are removed from the schedule
    /// (trivially feasibility-preserving).
    Departure(TaskId),
    /// Switch to `mode`: departures for active tasks not in the mode,
    /// arrivals (re-admissions from the pool) for inactive ones that are.
    ModeChange(Mode),
    /// Device operations on `device` now take `percent`% of their nominal
    /// worst case (a value above 100 models overload, below 100 relief).
    /// The service re-validates and sheds load if the schedule no longer
    /// fits.
    UtilisationSpike {
        /// The affected partition.
        device: DeviceId,
        /// New WCET as a percentage of the *nominal* (admission-time)
        /// WCET. Clamped to at least 1 µs per task by consumers.
        percent: u32,
    },
    /// The partition serving `device` crashed and restarted empty. The
    /// partition loses all live state (active tasks, schedule, spike
    /// scaling); a fleet router reacts by mass re-admitting the dead
    /// partition's tasks onto surviving partitions via its retry
    /// machinery, diagnosing the ones it cannot rehome.
    PartitionDeath {
        /// The partition that died.
        device: DeviceId,
    },
}

impl SystemEvent {
    /// A short lowercase tag naming the event kind (used by trace formats
    /// and per-kind statistics).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SystemEvent::Arrival(_) => "arrival",
            SystemEvent::Departure(_) => "departure",
            SystemEvent::ModeChange(_) => "mode-change",
            SystemEvent::UtilisationSpike { .. } => "spike",
            SystemEvent::PartitionDeath { .. } => "death",
        }
    }

    /// The device partition the event names, when it names one: an
    /// arrival's task device, a spike's target, or a death's victim.
    /// Departures and mode changes are device-free (they are resolved by
    /// task ownership) and return `None`. Fleet routers read this as the
    /// event's *origin* partition hint.
    #[must_use]
    pub fn device(&self) -> Option<DeviceId> {
        match self {
            SystemEvent::Arrival(task) => Some(task.device()),
            SystemEvent::UtilisationSpike { device, .. }
            | SystemEvent::PartitionDeath { device } => Some(*device),
            SystemEvent::Departure(_) | SystemEvent::ModeChange(_) => None,
        }
    }

    /// The task the event concerns, when it concerns exactly one.
    #[must_use]
    pub fn task_id(&self) -> Option<TaskId> {
        match self {
            SystemEvent::Arrival(task) => Some(task.id()),
            SystemEvent::Departure(id) => Some(*id),
            SystemEvent::ModeChange(_)
            | SystemEvent::UtilisationSpike { .. }
            | SystemEvent::PartitionDeath { .. } => None,
        }
    }

    /// The tenant the event acts for, when it carries one: an arrival's
    /// task tenant. Every other kind is tenant-free — departures and mode
    /// changes are resolved by task ownership, spikes and deaths are
    /// infrastructure events — and returns `None`. Fleet routers use this
    /// for per-tenant admission accounting and quota enforcement.
    #[must_use]
    pub fn tenant(&self) -> Option<TenantId> {
        match self {
            SystemEvent::Arrival(task) => Some(task.tenant()),
            SystemEvent::Departure(_)
            | SystemEvent::ModeChange(_)
            | SystemEvent::UtilisationSpike { .. }
            | SystemEvent::PartitionDeath { .. } => None,
        }
    }

    /// The event re-bound to `device`: an arrival's task is re-targeted
    /// ([`IoTask::retarget`]) and a spike renames its partition; the
    /// device-free kinds are returned unchanged. This is the routing
    /// primitive of a multi-partition fleet — an arrival rejected by one
    /// partition is re-offered to another by retargeting it.
    #[must_use]
    pub fn retargeted(&self, device: DeviceId) -> SystemEvent {
        match self {
            SystemEvent::Arrival(task) => SystemEvent::Arrival(task.retarget(device)),
            SystemEvent::UtilisationSpike { percent, .. } => SystemEvent::UtilisationSpike {
                device,
                percent: *percent,
            },
            SystemEvent::PartitionDeath { .. } => SystemEvent::PartitionDeath { device },
            other => other.clone(),
        }
    }
}

/// Routing metadata a fleet router stamps on an event when dispatching it
/// to a partition: where the event came from, where it was sent, and which
/// placement attempt this is (`0` = the policy's first choice, `k` = the
/// `k`-th cross-partition retry after a rejection).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedEvent {
    /// The event as offered to the target partition (arrivals are already
    /// retargeted to `target`).
    pub event: SystemEvent,
    /// The partition the event originally named, if any (the arrival's
    /// device before routing, a spike's device).
    pub origin: Option<DeviceId>,
    /// The partition the router chose.
    pub target: DeviceId,
    /// Placement attempt number: `0` for the first offer, incremented on
    /// every cross-partition admission retry.
    pub attempt: u32,
}

impl RoutedEvent {
    /// Routes `event` to `target` as attempt number `attempt`, recording
    /// the event's own device as the origin and retargeting it to the
    /// chosen partition.
    #[must_use]
    pub fn dispatch(event: &SystemEvent, target: DeviceId, attempt: u32) -> RoutedEvent {
        RoutedEvent {
            origin: event.device(),
            event: event.retargeted(target),
            target,
            attempt,
        }
    }

    /// `true` when the router moved the event away from the partition it
    /// originally named (a migration).
    #[must_use]
    pub fn migrated(&self) -> bool {
        self.origin.is_some_and(|o| o != self.target)
    }
}

/// A [`SystemEvent`] stamped with its occurrence instant (relative to the
/// schedule epoch). Event traces are ordered by `at`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// When the event occurs.
    pub at: Time,
    /// What happens.
    pub event: SystemEvent,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn task(id: u32) -> IoTask {
        IoTask::builder(TaskId(id), DeviceId(0))
            .wcet(Duration::from_micros(100))
            .period(Duration::from_millis(4))
            .ideal_offset(Duration::from_millis(2))
            .margin(Duration::from_millis(1))
            .build()
            .unwrap()
    }

    #[test]
    fn kinds_name_every_variant() {
        assert_eq!(SystemEvent::Arrival(task(0)).kind(), "arrival");
        assert_eq!(SystemEvent::Departure(TaskId(0)).kind(), "departure");
        assert_eq!(
            SystemEvent::ModeChange(Mode {
                id: ModeId(1),
                active: vec![TaskId(0)],
            })
            .kind(),
            "mode-change"
        );
        assert_eq!(
            SystemEvent::UtilisationSpike {
                device: DeviceId(0),
                percent: 150,
            }
            .kind(),
            "spike"
        );
        assert_eq!(
            SystemEvent::PartitionDeath {
                device: DeviceId(2),
            }
            .kind(),
            "death"
        );
    }

    #[test]
    fn timed_events_order_by_instant() {
        let mut trace = [
            TimedEvent {
                at: Time::from_millis(9),
                event: SystemEvent::Departure(TaskId(1)),
            },
            TimedEvent {
                at: Time::from_millis(2),
                event: SystemEvent::Arrival(task(2)),
            },
        ];
        trace.sort_by_key(|e| e.at);
        assert_eq!(trace[0].at, Time::from_millis(2));
        assert_eq!(trace[0].event.kind(), "arrival");
    }

    #[test]
    fn events_expose_their_device_and_task() {
        assert_eq!(SystemEvent::Arrival(task(0)).device(), Some(DeviceId(0)));
        assert_eq!(SystemEvent::Arrival(task(3)).task_id(), Some(TaskId(3)));
        assert_eq!(SystemEvent::Departure(TaskId(1)).device(), None);
        assert_eq!(SystemEvent::Departure(TaskId(1)).task_id(), Some(TaskId(1)));
        let spike = SystemEvent::UtilisationSpike {
            device: DeviceId(4),
            percent: 120,
        };
        assert_eq!(spike.device(), Some(DeviceId(4)));
        assert_eq!(spike.task_id(), None);
        let mode = SystemEvent::ModeChange(Mode {
            id: ModeId(0),
            active: vec![],
        });
        assert_eq!(mode.device(), None);
        assert_eq!(mode.task_id(), None);
        let death = SystemEvent::PartitionDeath {
            device: DeviceId(6),
        };
        assert_eq!(death.device(), Some(DeviceId(6)));
        assert_eq!(death.task_id(), None);
    }

    #[test]
    fn arrivals_carry_their_tenant_through_retargeting() {
        let tenanted = IoTask::builder(TaskId(0), DeviceId(0))
            .wcet(Duration::from_micros(100))
            .period(Duration::from_millis(4))
            .ideal_offset(Duration::from_millis(2))
            .margin(Duration::from_millis(1))
            .tenant(TenantId(7))
            .build()
            .unwrap();
        let arrival = SystemEvent::Arrival(tenanted);
        assert_eq!(arrival.tenant(), Some(TenantId(7)));
        assert_eq!(arrival.retargeted(DeviceId(3)).tenant(), Some(TenantId(7)));
        // The anonymous default and the tenant-free kinds.
        assert_eq!(SystemEvent::Arrival(task(1)).tenant(), Some(TenantId(0)));
        assert!(TenantId::default().is_anonymous());
        assert_eq!(SystemEvent::Departure(TaskId(1)).tenant(), None);
        assert_eq!(
            SystemEvent::PartitionDeath {
                device: DeviceId(0),
            }
            .tenant(),
            None
        );
    }

    #[test]
    fn retargeting_moves_arrivals_and_spikes_only() {
        let arrival = SystemEvent::Arrival(task(0));
        match arrival.retargeted(DeviceId(2)) {
            SystemEvent::Arrival(t) => {
                assert_eq!(t.device(), DeviceId(2));
                assert_eq!(t.id(), TaskId(0));
                assert_eq!(t.wcet(), task(0).wcet());
            }
            other => panic!("{other:?}"),
        }
        let spike = SystemEvent::UtilisationSpike {
            device: DeviceId(0),
            percent: 150,
        };
        assert_eq!(
            spike.retargeted(DeviceId(1)).device(),
            Some(DeviceId(1)),
            "spikes follow the new partition"
        );
        let depart = SystemEvent::Departure(TaskId(7));
        assert_eq!(depart.retargeted(DeviceId(9)), depart);
        let death = SystemEvent::PartitionDeath {
            device: DeviceId(0),
        };
        assert_eq!(
            death.retargeted(DeviceId(5)).device(),
            Some(DeviceId(5)),
            "deaths follow the new partition"
        );
    }

    #[test]
    fn routed_events_track_origin_and_migration() {
        let routed = RoutedEvent::dispatch(&SystemEvent::Arrival(task(0)), DeviceId(2), 0);
        assert_eq!(routed.origin, Some(DeviceId(0)));
        assert_eq!(routed.target, DeviceId(2));
        assert!(routed.migrated());
        match &routed.event {
            SystemEvent::Arrival(t) => assert_eq!(t.device(), DeviceId(2)),
            other => panic!("{other:?}"),
        }
        let home = RoutedEvent::dispatch(&SystemEvent::Arrival(task(0)), DeviceId(0), 1);
        assert!(!home.migrated());
        assert_eq!(home.attempt, 1);
        // Device-free events never count as migrated.
        let depart = RoutedEvent::dispatch(&SystemEvent::Departure(TaskId(0)), DeviceId(3), 0);
        assert_eq!(depart.origin, None);
        assert!(!depart.migrated());
    }

    #[test]
    fn mode_display_and_identity() {
        assert_eq!(ModeId(3).to_string(), "m3");
        let m = Mode {
            id: ModeId(0),
            active: vec![TaskId(1), TaskId(2)],
        };
        assert_eq!(m.clone(), m);
    }
}
