//! A persistent worker-pool executor shared by every parallel layer of
//! the workspace: the fleet's partition lanes and retry waves, the GA's
//! population evaluation, and the experiment engine's system sweeps.
//!
//! Before this module, each of those layers span up a fresh
//! [`std::thread::scope`] per call — one spawn/join cycle per fleet
//! *epoch*, per GA *generation*, per sweep *point*. At fleet-epoch rates
//! that is thousands of thread spawns per second of replay, all on the
//! hot path. [`WorkerPool`] replaces them with long-lived workers parked
//! on a [`Condvar`] behind a shared injector queue, in the style of
//! parallel multi-channel readout systems: lanes stay up, events stream
//! through.
//!
//! ## Execution model
//!
//! A pool executes *batches* of independent closures via
//! [`WorkerPool::run`] (or the order-preserving [`WorkerPool::map`] /
//! [`WorkerPool::map_chunks`] built on top). `run` submits every task to
//! the injector, then the **calling thread helps**: it drains its own
//! batch's tasks from the queue until none remain, and only then blocks
//! waiting for stragglers executing on other workers. This "help-first"
//! rule is what makes nesting safe: a task running *on* the pool may
//! itself call [`WorkerPool::run`] — the inner call makes progress on
//! the caller's own thread even when every worker is busy, so the pool
//! cannot deadlock however deep the nesting (sweep → fleet → lanes).
//!
//! ## Determinism
//!
//! The pool is an executor, not a scheduler of effects: every
//! composition in this workspace writes results back by index (or into
//! disjoint `&mut` chunks), so the outcome is bit-identical to running
//! the same closures sequentially — for any pool width, any requested
//! chunking width, and any interleaving. Parallelism changes wall-clock
//! time only. The fleet/GA determinism suites pin this end to end.
//!
//! ## Lifetimes and panics
//!
//! Tasks may borrow the caller's stack (they are `'scope`, not
//! `'static`): [`WorkerPool::run`] erases the lifetime internally and is
//! sound because it never returns — not even by unwinding — before every
//! submitted task has finished. A panicking task is caught on the worker,
//! carried back, and re-raised on the calling thread after the batch
//! drains, mirroring [`std::thread::scope`]'s behaviour.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased queued closure. Soundness: see [`WorkerPool::run`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One entry of the injector queue: the batch it belongs to (so a
/// helping caller can pick out its own work) plus the closure.
struct QueuedJob {
    batch: usize,
    job: Job,
}

/// Injector state shared between the workers and submitting threads.
struct Injector {
    queue: Mutex<InjectorState>,
    /// Signalled when work arrives or the pool shuts down.
    work_ready: Condvar,
}

struct InjectorState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

/// Completion latch of one [`WorkerPool::run`] batch.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Arc<Latch> {
        Arc::new(Latch {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    /// Marks one task finished, capturing the first panic payload.
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every task of the batch has completed, then re-raises
    /// the first captured panic, if any.
    fn wait(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while state.remaining > 0 {
            state = self
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            resume_unwind(payload);
        }
    }
}

/// A persistent pool of worker threads executing batches of borrowed
/// closures. See the [module docs](self) for the execution model; most
/// callers want the process-wide [`WorkerPool::global`] instance.
pub struct WorkerPool {
    injector: Arc<Injector>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Monotonic batch ids so helping threads can identify their own
    /// queued work.
    next_batch: std::sync::atomic::AtomicUsize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool of exactly `workers` long-lived threads (`0` = one per
    /// available core, see [`available_workers`]). A pool of width 1 is
    /// valid and still useful: batches run correctly (mostly on the
    /// calling thread, via helping), they just do not overlap.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let count = if workers == 0 {
            available_workers()
        } else {
            workers
        };
        let injector = Arc::new(Injector {
            queue: Mutex::new(InjectorState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..count)
            .map(|i| {
                let injector = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("tagio-pool-{i}"))
                    .spawn(move || worker_loop(&injector))
                    .expect("spawning a pool worker")
            })
            .collect();
        WorkerPool {
            injector,
            workers,
            next_batch: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The process-wide shared pool, created on first use with one
    /// worker per available core. Every parallel layer of the workspace
    /// (fleet lanes and retry waves, GA population evaluation, the
    /// experiment engine's sweeps) runs on this one instance, so nested
    /// compositions share a single set of long-lived threads instead of
    /// spawning per call.
    #[must_use]
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(0))
    }

    /// The number of worker threads (excluding helping callers).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs a batch of independent closures to completion, helping from
    /// the calling thread. Tasks may borrow the caller's stack; `run`
    /// returns (or unwinds, re-raising the first task panic) only after
    /// every task has finished, which is what makes the internal
    /// lifetime erasure sound.
    ///
    /// Nesting is safe: a task may itself call `run` on the same pool —
    /// the inner call drains its own work inline when no worker is free
    /// (see the module docs for the no-deadlock argument).
    pub fn run<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        if tasks.len() == 1 {
            // Nothing to overlap with: run inline, no queue round-trip.
            let mut tasks = tasks;
            (tasks.pop().expect("one task"))();
            return;
        }
        let batch = self
            .next_batch
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let latch = Latch::new(tasks.len());
        {
            let mut state = self
                .injector
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for task in tasks {
                let latch = Arc::clone(&latch);
                // The unwind trap wraps only the user closure; the latch
                // is signalled exactly once per task whether it ran on a
                // worker or on the helping caller.
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(task));
                    latch.complete(outcome.err());
                });
                // SAFETY: the job borrows data that outlives `'scope`.
                // `run` does not return or unwind before `latch.wait()`
                // observes every task complete, so no borrow escapes the
                // caller's frame. `Box<dyn FnOnce + Send>` has the same
                // layout for both lifetimes; only the bound is erased.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
                state.jobs.push_back(QueuedJob { batch, job });
            }
            drop(state);
            self.injector.work_ready.notify_all();
        }
        // Help-first: drain this batch's own jobs on the calling thread
        // until the queue holds none of them, then wait for stragglers
        // in flight on the workers. No new jobs of this batch can appear
        // after submission, so one drain loop suffices.
        loop {
            let own = {
                let mut state = self
                    .injector
                    .queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                take_batch_job(&mut state.jobs, batch)
            };
            match own {
                Some(job) => job(),
                None => break,
            }
        }
        latch.wait();
    }

    /// Maps `f` over `items` on the pool, preserving order: results are
    /// written back by index, so the output is identical to the serial
    /// `items.iter().map(f)` for any pool width (given a pure `f`).
    ///
    /// `width` is the *chunking* width — how many parallel tasks the
    /// input is split into — clamped to `[1, items.len()]`; `0` means
    /// one chunk per available core. The pool's worker count bounds how
    /// many chunks actually overlap; neither number affects the result.
    pub fn map<T, R, F>(&self, items: &[T], width: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let width = resolve_width(width).clamp(1, items.len());
        if width == 1 {
            return items.iter().map(f).collect();
        }
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        let chunk = items.len().div_ceil(width);
        let f = &f;
        self.map_chunks(
            out.chunks_mut(chunk)
                .zip(items.chunks(chunk))
                .map(|(slots, values)| {
                    move || {
                        for (slot, item) in slots.iter_mut().zip(values) {
                            *slot = Some(f(item));
                        }
                    }
                }),
        );
        out.into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect()
    }

    /// Runs an iterator of independent closures (typically one per
    /// disjoint `&mut` chunk of some caller-owned state) to completion
    /// on the pool. The building block under [`WorkerPool::map`] and the
    /// fleet's lane/wave evaluation.
    pub fn map_chunks<'scope, F>(&self, chunks: impl Iterator<Item = F>)
    where
        F: FnOnce() + Send + 'scope,
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + 'scope>> = chunks
            .map(|chunk| Box::new(chunk) as Box<dyn FnOnce() + Send + 'scope>)
            .collect();
        self.run(tasks);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self
                .injector
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.shutdown = true;
        }
        self.injector.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Removes one job belonging to `batch` from the queue, if any.
fn take_batch_job(jobs: &mut VecDeque<QueuedJob>, batch: usize) -> Option<Job> {
    let index = jobs.iter().position(|j| j.batch == batch)?;
    jobs.remove(index).map(|j| j.job)
}

fn worker_loop(injector: &Injector) {
    loop {
        let job = {
            let mut state = injector
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(queued) = state.jobs.pop_front() {
                    break Some(queued.job);
                }
                if state.shutdown {
                    break None;
                }
                state = injector
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match job {
            // The job wrapper traps unwinds itself, but a second trap
            // here keeps a worker alive even if a wrapper invariant is
            // ever broken — the pool must survive any payload.
            Some(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            None => return,
        }
    }
}

/// The worker count `0` resolves to, everywhere in the workspace: one
/// per available core, falling back to 1 when parallelism cannot be
/// queried. Every `threads: 0` knob (`--threads`, `GaConfig::threads`,
/// `FleetConfig::threads`) resolves through this single function so the
/// semantics cannot drift between layers.
///
/// The `TAGIO_POOL_WORKERS` environment variable, when set to a
/// positive integer, overrides the detected core count — the hook CI
/// uses to replay the determinism suites at a pinned pool width without
/// touching any code path (parallelism may only change wall-clock time,
/// so every suite must pass under any value). Unset, empty, zero and
/// non-numeric values all fall through to detection.
#[must_use]
pub fn available_workers() -> usize {
    if let Some(n) = std::env::var("TAGIO_POOL_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Resolves a requested chunking width: `0` = one per available core.
#[must_use]
pub fn resolve_width(width: usize) -> usize {
    if width == 0 {
        available_workers()
    } else {
        width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_matches_serial_for_any_width_and_pool_size() {
        let items: Vec<u64> = (0..197).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for pool_width in [1, 2, 4] {
            let pool = WorkerPool::new(pool_width);
            for width in [0, 1, 2, 5, 7, 196, 197, 1000] {
                assert_eq!(pool.map(&items, width, |x| x * 3 + 1), serial);
            }
        }
    }

    #[test]
    fn empty_and_single_inputs_take_the_inline_path() {
        let pool = WorkerPool::new(2);
        let empty: [u64; 0] = [];
        assert!(pool.map(&empty, 8, |x| *x).is_empty());
        assert_eq!(pool.map(&[7u64], 8, |x| x + 1), vec![8]);
        pool.run(Vec::new());
    }

    #[test]
    fn tasks_borrow_the_callers_stack() {
        let pool = WorkerPool::new(2);
        let mut slots = [0u64; 8];
        let chunk_len = 2;
        pool.map_chunks(slots.chunks_mut(chunk_len).enumerate().map(|(i, chunk)| {
            move || {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = (i * chunk_len + j) as u64 * 10;
                }
            }
        }));
        assert_eq!(slots, [0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        // Depth-2 nesting wider than the pool: every level must make
        // progress by helping from its own thread.
        let pool = WorkerPool::new(2);
        let outer: Vec<u64> = (0..8).collect();
        let result = pool.map(&outer, 8, |x| {
            let inner: Vec<u64> = (0..6).collect();
            pool.map(&inner, 6, |y| x * 100 + y).iter().sum::<u64>()
        });
        let expected: Vec<u64> = (0..8).map(|x| (0..6).map(|y| x * 100 + y).sum()).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn global_pool_is_shared_and_reused() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().workers() >= 1);
        let items: Vec<u64> = (0..32).collect();
        let doubled = WorkerPool::global().map(&items, 4, |x| x * 2);
        assert_eq!(doubled, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn workers_persist_across_batches() {
        // The whole point of the pool: repeated batches reuse the same
        // threads instead of spawning. Count distinct worker identities
        // over many batches — they must stay within the pool width even
        // though far more batches than workers were run.
        let pool = WorkerPool::new(2);
        let seen = Mutex::new(std::collections::BTreeSet::new());
        for _ in 0..50 {
            let items: Vec<u64> = (0..4).collect();
            pool.map(&items, 4, |x| {
                if std::thread::current()
                    .name()
                    .is_some_and(|n| n.starts_with("tagio-pool-"))
                {
                    seen.lock()
                        .unwrap()
                        .insert(format!("{:?}", std::thread::current().id()));
                }
                *x
            });
        }
        assert!(seen.lock().unwrap().len() <= 2, "workers were respawned");
    }

    #[test]
    fn a_panicking_task_propagates_after_the_batch_drains() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let items: Vec<u64> = (0..8).collect();
            pool.map(&items, 8, |x| {
                if *x == 3 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                *x
            });
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // Every non-panicking task still ran (no early unwind while
        // borrows were live), and the pool stays usable afterwards.
        assert_eq!(completed.load(Ordering::SeqCst), 7);
        let items: Vec<u64> = (0..4).collect();
        assert_eq!(pool.map(&items, 2, |x| x + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn zero_resolves_to_available_cores_everywhere() {
        assert_eq!(resolve_width(0), available_workers());
        assert_eq!(resolve_width(3), 3);
        assert!(available_workers() >= 1);
        assert!(WorkerPool::new(0).workers() >= 1);
    }

    /// Exercised in a subprocess: the env var is process-global, and the
    /// other tests in this binary run concurrently with width-0 pools.
    #[test]
    fn pool_workers_env_var_pins_the_detected_width() {
        if std::env::var_os("TAGIO_POOL_WORKERS_SUBTEST").is_some() {
            // Child: TAGIO_POOL_WORKERS is set by the parent below.
            assert_eq!(available_workers(), 3);
            assert_eq!(resolve_width(0), 3);
            return;
        }
        let this = std::env::current_exe().expect("test binary path");
        for (value, should_pin) in [("3", true), ("0", false), ("cores", false), (" 3 ", true)] {
            let out = std::process::Command::new(&this)
                .arg("pool::tests::pool_workers_env_var_pins_the_detected_width")
                .arg("--exact")
                .env("TAGIO_POOL_WORKERS", value)
                .env("TAGIO_POOL_WORKERS_SUBTEST", "1")
                .output()
                .expect("re-running the test binary");
            assert_eq!(
                out.status.success(),
                should_pin || available_workers() == 3,
                "TAGIO_POOL_WORKERS={value:?}: {}",
                String::from_utf8_lossy(&out.stdout)
            );
        }
    }
}
