//! Job expansion over the hyper-period.
//!
//! Each task `τi` releases jobs `λi^j` with release `Ti·j`, ideal start
//! `Ti·j + δi` and absolute deadline `Ti·j + Di`. Schedulers operate on the
//! complete [`JobSet`] of one partition over one hyper-period.
//!
//! ```
//! use tagio_core::job::JobSet;
//! use tagio_core::task::{IoTask, TaskId, DeviceId, TaskSet};
//! use tagio_core::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set: TaskSet = vec![IoTask::builder(TaskId(0), DeviceId(0))
//!     .wcet(Duration::from_micros(100))
//!     .period(Duration::from_millis(5))
//!     .ideal_offset(Duration::from_millis(2))
//!     .margin(Duration::from_micros(1250))
//!     .build()?]
//! .into_iter()
//! .collect();
//! let jobs = JobSet::expand(&set);
//! assert_eq!(jobs.len(), 1); // hyper-period = one period
//! # Ok(())
//! # }
//! ```

use crate::quality::QualityCurve;
use crate::task::{Priority, TaskId, TaskSet};
use crate::time::{Duration, Time};
use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifies job `λi^j`: the `index`-th release of task `task`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct JobId {
    /// The releasing task.
    pub task: TaskId,
    /// Release index `j` within the hyper-period (0-based).
    pub index: u32,
}

impl JobId {
    /// Convenience constructor.
    #[must_use]
    pub fn new(task: TaskId, index: u32) -> Self {
        JobId { task, index }
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.task, self.index)
    }
}

/// One release of a timed I/O task, with all timing attributes resolved to
/// absolute instants within the hyper-period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    id: JobId,
    release: Time,
    ideal_start: Time,
    abs_deadline: Time,
    wcet: Duration,
    margin: Duration,
    priority: Priority,
    quality: QualityCurve,
}

impl Job {
    /// Builds a job directly (mostly useful in tests; prefer
    /// [`JobSet::expand`]).
    ///
    /// # Panics
    /// Panics if the window is inconsistent (`ideal_start < release`,
    /// `ideal_start + wcet > abs_deadline`, or the margin leaves the release
    /// window).
    #[must_use]
    #[allow(clippy::too_many_arguments)] // the model's 6-tuple plus identity
    pub fn new(
        id: JobId,
        release: Time,
        ideal_start: Time,
        abs_deadline: Time,
        wcet: Duration,
        margin: Duration,
        priority: Priority,
        quality: QualityCurve,
    ) -> Self {
        assert!(ideal_start >= release, "ideal start precedes release");
        assert!(
            ideal_start + wcet <= abs_deadline,
            "ideal start leaves no room before the deadline"
        );
        assert!(
            ideal_start
                .checked_sub_duration(margin)
                .is_some_and(|t| t >= release),
            "margin extends before the release"
        );
        assert!(
            ideal_start + margin <= abs_deadline,
            "margin extends past the deadline"
        );
        Job {
            id,
            release,
            ideal_start,
            abs_deadline,
            wcet,
            margin,
            priority,
            quality,
        }
    }

    /// Job identifier `λi^j`.
    #[must_use]
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Release instant `Ti · j`.
    #[must_use]
    pub fn release(&self) -> Time {
        self.release
    }

    /// Ideal start instant `Ti · j + δi`.
    #[must_use]
    pub fn ideal_start(&self) -> Time {
        self.ideal_start
    }

    /// Absolute deadline `Ti · j + Di`.
    #[must_use]
    pub fn abs_deadline(&self) -> Time {
        self.abs_deadline
    }

    /// Worst-case device operation time `Ci`.
    #[must_use]
    pub fn wcet(&self) -> Duration {
        self.wcet
    }

    /// Timing margin `θi`.
    #[must_use]
    pub fn margin(&self) -> Duration {
        self.margin
    }

    /// Task priority (larger value = higher priority).
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The quality curve evaluated against this job's ideal start.
    #[must_use]
    pub fn quality_curve(&self) -> &QualityCurve {
        &self.quality
    }

    /// Latest start that still meets the deadline (`Ti·j + Di − Ci`;
    /// Constraint 1 upper bound).
    #[must_use]
    pub fn latest_start(&self) -> Time {
        self.abs_deadline - self.wcet
    }

    /// Earliest instant of the above-minimum quality window
    /// (`ideal − θ`, clamped to the release).
    #[must_use]
    pub fn window_start(&self) -> Time {
        self.ideal_start
            .saturating_sub_duration(self.margin)
            .max(self.release)
    }

    /// Latest *start* inside the quality window that still meets the
    /// deadline (`min(ideal + θ, latest_start)`).
    #[must_use]
    pub fn window_end(&self) -> Time {
        (self.ideal_start + self.margin).min(self.latest_start())
    }

    /// Quality obtained when the job starts at `start` (paper Fig. 1):
    /// `Vmax` at the ideal instant, linear decay to `Vmin` at distance `θ`,
    /// `Vmin` outside the window.
    ///
    /// The caller is responsible for `start` being feasible (within the
    /// release window); infeasible starts are judged by
    /// [`Schedule::validate`](crate::schedule::Schedule::validate), not here.
    #[must_use]
    pub fn quality_at(&self, start: Time) -> f64 {
        self.quality.value(self.ideal_start, self.margin, start)
    }

    /// `true` if starting at `start` is *exact* timing-accurate control
    /// (`κ == Ti·j + δi`, Eq. (1)).
    #[must_use]
    pub fn is_exact(&self, start: Time) -> bool {
        start == self.ideal_start
    }

    /// `true` if `start` respects Constraint 1
    /// (`Ti·j ≤ κ ≤ Ti·j + Di − Ci`).
    #[must_use]
    pub fn start_feasible(&self, start: Time) -> bool {
        start >= self.release && start <= self.latest_start()
    }
}

/// All jobs of one partition over one hyper-period, sorted by
/// (release, task id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSet {
    jobs: Vec<Job>,
    hyperperiod: Duration,
}

impl JobSet {
    /// Expands every task of `tasks` into its jobs over one hyper-period.
    ///
    /// Jobs are ordered by release time, ties broken by task id, which gives
    /// schedulers a deterministic arrival order.
    ///
    /// # Panics
    /// Panics if any period does not divide the hyper-period (cannot happen
    /// for sets built via [`TaskSet`]).
    #[must_use]
    pub fn expand(tasks: &TaskSet) -> Self {
        let hyperperiod = tasks.hyperperiod();
        let mut jobs = Vec::new();
        for task in tasks {
            let period = task.period();
            assert!(
                !period.is_zero() && (hyperperiod % period).is_zero(),
                "period must divide the hyper-period"
            );
            let releases = hyperperiod / period;
            for j in 0..releases {
                let release = Time::from(period * j + task.release_offset());
                let ideal = release + task.ideal_offset();
                let deadline = release + task.deadline();
                jobs.push(Job::new(
                    JobId::new(task.id(), j as u32),
                    release,
                    ideal,
                    deadline,
                    task.wcet(),
                    task.margin(),
                    task.priority(),
                    QualityCurve::linear(task.vmax(), task.vmin()),
                ));
            }
        }
        jobs.sort_by(|a, b| {
            a.release()
                .cmp(&b.release())
                .then(a.id().task.cmp(&b.id().task))
                .then(a.id().index.cmp(&b.id().index))
        });
        JobSet { jobs, hyperperiod }
    }

    /// Builds a job set from pre-constructed jobs (tests, custom scenarios).
    #[must_use]
    pub fn from_jobs(mut jobs: Vec<Job>, hyperperiod: Duration) -> Self {
        jobs.sort_by(|a, b| {
            a.release()
                .cmp(&b.release())
                .then(a.id().task.cmp(&b.id().task))
                .then(a.id().index.cmp(&b.id().index))
        });
        JobSet { jobs, hyperperiod }
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if there are no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The hyper-period the jobs were expanded over.
    #[must_use]
    pub fn hyperperiod(&self) -> Duration {
        self.hyperperiod
    }

    /// The scheduling horizon: the latest absolute deadline, or the
    /// hyper-period if later. With release offsets (§III.C) jobs of the
    /// last releases finish past the hyper-period boundary, so slot-based
    /// allocators must plan up to this instant.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.jobs
            .iter()
            .map(Job::abs_deadline)
            .max()
            .unwrap_or(Time::ZERO)
            .max(Time::from(self.hyperperiod))
    }

    /// Iterates over jobs in (release, task) order.
    pub fn iter(&self) -> core::slice::Iter<'_, Job> {
        self.jobs.iter()
    }

    /// Jobs as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Job] {
        &self.jobs
    }

    /// Looks up a job by id.
    #[must_use]
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.iter().find(|j| j.id() == id)
    }

    /// Total demand `Σ Ci` over the hyper-period.
    #[must_use]
    pub fn total_demand(&self) -> Duration {
        self.jobs.iter().map(Job::wcet).sum()
    }

    /// Sum of the peak quality `Σ V(δ)` (denominator of Υ, Eq. (2)).
    #[must_use]
    pub fn peak_quality(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.quality_at(j.ideal_start()))
            .sum()
    }
}

impl<'a> IntoIterator for &'a JobSet {
    type Item = &'a Job;
    type IntoIter = core::slice::Iter<'a, Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{DeviceId, IoTask};

    fn simple_set() -> TaskSet {
        vec![
            IoTask::builder(TaskId(0), DeviceId(0))
                .wcet(Duration::from_micros(100))
                .period(Duration::from_millis(4))
                .ideal_offset(Duration::from_millis(2))
                .margin(Duration::from_millis(1))
                .build()
                .unwrap(),
            IoTask::builder(TaskId(1), DeviceId(0))
                .wcet(Duration::from_micros(200))
                .period(Duration::from_millis(8))
                .ideal_offset(Duration::from_millis(4))
                .margin(Duration::from_millis(2))
                .build()
                .unwrap(),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn expand_counts_releases_per_task() {
        let jobs = JobSet::expand(&simple_set());
        // hyper-period 8ms: task0 releases 2 jobs, task1 releases 1.
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs.hyperperiod(), Duration::from_millis(8));
        assert_eq!(jobs.iter().filter(|j| j.id().task == TaskId(0)).count(), 2);
    }

    #[test]
    fn expand_computes_absolute_instants() {
        let jobs = JobSet::expand(&simple_set());
        let j1 = jobs.get(JobId::new(TaskId(0), 1)).unwrap();
        assert_eq!(j1.release(), Time::from_millis(4));
        assert_eq!(j1.ideal_start(), Time::from_millis(6));
        assert_eq!(j1.abs_deadline(), Time::from_millis(8));
        assert_eq!(j1.latest_start(), Time::from_micros(7_900));
    }

    #[test]
    fn jobs_sorted_by_release_then_task() {
        let jobs = JobSet::expand(&simple_set());
        let order: Vec<JobId> = jobs.iter().map(Job::id).collect();
        assert_eq!(
            order,
            vec![
                JobId::new(TaskId(0), 0),
                JobId::new(TaskId(1), 0),
                JobId::new(TaskId(0), 1),
            ]
        );
    }

    #[test]
    fn quality_peaks_at_ideal_and_decays() {
        let jobs = JobSet::expand(&simple_set());
        let j = jobs.get(JobId::new(TaskId(0), 0)).unwrap();
        let ideal = j.ideal_start();
        let vmax = j.quality_at(ideal);
        assert!(j.is_exact(ideal));
        let off = j.quality_at(ideal + Duration::from_micros(500));
        assert!(off < vmax);
        // outside the window => Vmin
        let boundary = j.quality_at(ideal + j.margin());
        let outside = j.quality_at(ideal + j.margin() + Duration::from_micros(1));
        assert_eq!(boundary, outside);
    }

    #[test]
    fn window_clamps_to_release_and_deadline() {
        let j = Job::new(
            JobId::new(TaskId(0), 0),
            Time::from_millis(0),
            Time::from_millis(2),
            Time::from_millis(4),
            Duration::from_micros(1_800),
            Duration::from_millis(2),
            Priority(0),
            QualityCurve::linear(2.0, 1.0),
        );
        assert_eq!(j.window_start(), Time::ZERO);
        // ideal + margin = 4ms but latest_start = 2.2ms
        assert_eq!(j.window_end(), Time::from_micros(2_200));
    }

    #[test]
    fn start_feasible_matches_constraint_1() {
        let jobs = JobSet::expand(&simple_set());
        let j = jobs.get(JobId::new(TaskId(0), 0)).unwrap();
        assert!(j.start_feasible(j.release()));
        assert!(j.start_feasible(j.latest_start()));
        assert!(!j.start_feasible(j.latest_start() + Duration::from_micros(1)));
    }

    #[test]
    fn total_demand_sums_wcets() {
        let jobs = JobSet::expand(&simple_set());
        assert_eq!(jobs.total_demand(), Duration::from_micros(100 + 100 + 200));
    }

    #[test]
    fn peak_quality_is_sum_of_vmax() {
        let jobs = JobSet::expand(&simple_set());
        // default builder quality is vmax=1, vmin=0 per task
        assert!((jobs.peak_quality() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ideal start precedes release")]
    fn job_new_rejects_ideal_before_release() {
        let _ = Job::new(
            JobId::new(TaskId(0), 0),
            Time::from_millis(2),
            Time::from_millis(1),
            Time::from_millis(4),
            Duration::from_micros(100),
            Duration::ZERO,
            Priority(0),
            QualityCurve::linear(1.0, 0.0),
        );
    }

    #[test]
    fn release_offsets_shift_all_instants() {
        let set: TaskSet = vec![IoTask::builder(TaskId(0), DeviceId(0))
            .wcet(Duration::from_micros(100))
            .period(Duration::from_millis(4))
            .ideal_offset(Duration::from_millis(2))
            .margin(Duration::from_millis(1))
            .release_offset(Duration::from_millis(3))
            .build()
            .unwrap()]
        .into_iter()
        .collect();
        let jobs = JobSet::expand(&set);
        let j0 = jobs.get(JobId::new(TaskId(0), 0)).unwrap();
        assert_eq!(j0.release(), Time::from_millis(3));
        assert_eq!(j0.ideal_start(), Time::from_millis(5));
        assert_eq!(j0.abs_deadline(), Time::from_millis(7));
    }

    #[test]
    fn horizon_extends_past_hyperperiod_with_offsets() {
        let set: TaskSet = vec![IoTask::builder(TaskId(0), DeviceId(0))
            .wcet(Duration::from_micros(100))
            .period(Duration::from_millis(4))
            .ideal_offset(Duration::from_millis(2))
            .margin(Duration::from_millis(1))
            .release_offset(Duration::from_millis(3))
            .build()
            .unwrap()]
        .into_iter()
        .collect();
        let jobs = JobSet::expand(&set);
        assert_eq!(jobs.hyperperiod(), Duration::from_millis(4));
        assert_eq!(jobs.horizon(), Time::from_millis(7));
    }

    #[test]
    fn horizon_without_offsets_is_hyperperiod() {
        let jobs = JobSet::expand(&simple_set());
        assert_eq!(jobs.horizon(), Time::from_millis(8));
    }

    #[test]
    fn from_jobs_sorts_input() {
        let a = Job::new(
            JobId::new(TaskId(1), 0),
            Time::from_millis(1),
            Time::from_millis(1),
            Time::from_millis(3),
            Duration::from_micros(10),
            Duration::ZERO,
            Priority(0),
            QualityCurve::linear(1.0, 0.0),
        );
        let b = Job::new(
            JobId::new(TaskId(0), 0),
            Time::ZERO,
            Time::ZERO,
            Time::from_millis(2),
            Duration::from_micros(10),
            Duration::ZERO,
            Priority(1),
            QualityCurve::linear(1.0, 0.0),
        );
        let set = JobSet::from_jobs(vec![a, b], Duration::from_millis(3));
        assert_eq!(set.as_slice()[0].id().task, TaskId(0));
    }
}
