//! Criterion benchmark of the Table I resource-model composition (it is
//! trivially fast; the bench documents that regenerating the table is
//! effectively free).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tagio_hwcost::{proposed_blocks, render_table1, total_cost};

fn bench_hwcost(c: &mut Criterion) {
    c.bench_function("table1-compose", |b| {
        b.iter(|| black_box(total_cost(&proposed_blocks())));
    });
    c.bench_function("table1-render", |b| {
        b.iter(|| black_box(render_table1()));
    });
}

criterion_group!(benches, bench_hwcost);
criterion_main!(benches);
