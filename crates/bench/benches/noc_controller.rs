//! Criterion benchmarks of the two hardware substrates: NoC cycle
//! throughput and controller schedule replay.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tagio_bench::generate_systems;
use tagio_controller::sim::{execute_partitioned, partition_jobs};
use tagio_core::schedule::{entry_for, Schedule};
use tagio_noc::sim::{NocConfig, NocSim};
use tagio_noc::topology::{Mesh, NodeId};
use tagio_noc::traffic::UniformTraffic;
use tagio_sched::{Scheduler, StaticScheduler};

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc-4x4-500cycles", |b| {
        b.iter(|| {
            let mut sim = NocSim::new(Mesh::new(4, 4), NocConfig::default());
            let mut rng = StdRng::seed_from_u64(1);
            UniformTraffic::light().schedule(&mut sim, 200, &mut rng);
            sim.send(NodeId::new(0, 0), NodeId::new(3, 3), 4, 7, 0);
            sim.run_until(500);
            black_box(sim.delivered().len())
        });
    });
}

fn bench_controller_replay(c: &mut Criterion) {
    let sys = generate_systems(0.5, 1, 3).pop().expect("one system");
    let schedules: std::collections::BTreeMap<_, _> = partition_jobs(&sys.tasks)
        .into_iter()
        .map(|(dev, jobs)| {
            // A real (conflict-free) offline schedule; fall back to the
            // all-ideal layout if the heuristic declines the partition.
            let s = StaticScheduler::new().schedule(&jobs).unwrap_or_else(|_| {
                jobs.iter()
                    .map(|j| entry_for(j, j.ideal_start()))
                    .collect::<Schedule>()
            });
            (dev, s)
        })
        .collect();
    c.bench_function("controller-hyperperiod-replay", |b| {
        b.iter(|| black_box(execute_partitioned(&sys.tasks, &schedules).expect("fits")));
    });
}

criterion_group!(benches, bench_noc, bench_controller_replay);
criterion_main!(benches);
