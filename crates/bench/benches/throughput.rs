//! Criterion micro-benchmarks of the fleet admission hot path: the
//! allocation-lean mode against the naive baseline on one gate-bound
//! and one churning scenario.
//!
//! These measure per-replay cost under criterion's statistics; the
//! sweep-shaped `BENCH_throughput.json` trajectory comes from the
//! `throughput` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tagio_online::fleet::{FleetConfig, FleetScheduler};
use tagio_online::scenario::{FleetScenario, FleetScenarioConfig};

/// Events per routing epoch (mirrors the `throughput` binary).
const BATCH: usize = 16;

fn replay(scenario: &FleetScenario, lean: bool) -> usize {
    let config = FleetConfig {
        threads: 1,
        lean,
        ..FleetConfig::default()
    };
    let mut fleet = FleetScheduler::bootstrap(&scenario.bases, config);
    let events: Vec<_> = scenario.events.iter().map(|e| e.event.clone()).collect();
    let mut decided = 0;
    for chunk in events.chunks(BATCH) {
        decided += fleet.apply_batch(chunk).len();
    }
    decided
}

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet-admission");
    group.sample_size(10);
    // Gate-bound: a near-capacity partition fast-rejects most arrivals —
    // the regime the lean mode targets.
    let gate_bound = FleetScenario::generate(
        &FleetScenarioConfig::builder()
            .partitions(1)
            .base_utilisation(0.90)
            .arrivals(192)
            .departure_permille(0)
            .spike_every(0)
            .mode_change(false)
            .seed(42)
            .build()
            .expect("valid config"),
    );
    // Churning: departures, spikes and a mode change keep the repair
    // ladder busy — both modes do identical repair work here.
    let churning = FleetScenario::generate(
        &FleetScenarioConfig::builder()
            .partitions(2)
            .base_utilisation(0.55)
            .arrivals(48)
            .seed(42)
            .build()
            .expect("valid config"),
    );
    for (label, scenario) in [("gate-bound", &gate_bound), ("churning", &churning)] {
        group.bench_with_input(BenchmarkId::new("naive", label), scenario, |b, s| {
            b.iter(|| black_box(replay(s, false)));
        });
        group.bench_with_input(BenchmarkId::new("lean", label), scenario, |b, s| {
            b.iter(|| black_box(replay(s, true)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
