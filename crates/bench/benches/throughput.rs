//! Criterion micro-benchmarks of the fleet admission hot path: the
//! allocation-lean mode against the naive baseline on one gate-bound
//! and one churning scenario.
//!
//! These measure per-replay cost under criterion's statistics; the
//! sweep-shaped `BENCH_throughput.json` trajectory comes from the
//! `throughput` binary.
//!
//! Scenario generation, event-stream cloning and fleet bootstrap are
//! all *setup*, not hot path: the scenarios and their streams are built
//! once outside the measured closures, and each iteration's fresh
//! [`FleetScheduler`] comes from `iter_batched`'s untimed setup stage —
//! the timed region is exactly the [`FleetScheduler::apply_batch`]
//! replay loop the production path runs.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use tagio_core::event::SystemEvent;
use tagio_online::fleet::{FleetConfig, FleetScheduler};
use tagio_online::scenario::{FleetScenario, FleetScenarioConfig};

/// Events per routing epoch (mirrors the `throughput` binary).
const BATCH: usize = 16;

/// A scenario prepared for replay: the fleet bases plus the raw event
/// stream, extracted once so per-iteration work is admission only.
struct Prepared {
    scenario: FleetScenario,
    stream: Vec<SystemEvent>,
}

impl Prepared {
    fn new(scenario: FleetScenario) -> Self {
        let stream = scenario.events.iter().map(|e| e.event.clone()).collect();
        Prepared { scenario, stream }
    }

    /// A fresh fleet over this scenario's bases — `iter_batched` setup.
    fn fleet(&self, lean: bool) -> FleetScheduler {
        let config = FleetConfig {
            threads: 1,
            lean,
            ..FleetConfig::default()
        };
        FleetScheduler::bootstrap(&self.scenario.bases, config)
    }

    /// The timed routine: replay the pre-cloned stream through `fleet`.
    fn replay(&self, mut fleet: FleetScheduler) -> usize {
        let mut decided = 0;
        for chunk in self.stream.chunks(BATCH) {
            decided += fleet.apply_batch(chunk).len();
        }
        decided
    }
}

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet-admission");
    group.sample_size(10);
    // Gate-bound: a near-capacity partition fast-rejects most arrivals —
    // the regime the lean mode targets.
    let gate_bound = Prepared::new(FleetScenario::generate(
        &FleetScenarioConfig::builder()
            .partitions(1)
            .base_utilisation(0.90)
            .arrivals(192)
            .departure_permille(0)
            .spike_every(0)
            .mode_change(false)
            .seed(42)
            .build()
            .expect("valid config"),
    ));
    // Churning: departures, spikes and a mode change keep the repair
    // ladder busy — both modes do identical repair work here.
    let churning = Prepared::new(FleetScenario::generate(
        &FleetScenarioConfig::builder()
            .partitions(2)
            .base_utilisation(0.55)
            .arrivals(48)
            .seed(42)
            .build()
            .expect("valid config"),
    ));
    for (label, prepared) in [("gate-bound", &gate_bound), ("churning", &churning)] {
        for (method, lean) in [("naive", false), ("lean", true)] {
            group.bench_with_input(BenchmarkId::new(method, label), prepared, |b, p| {
                b.iter_batched(
                    || p.fleet(lean),
                    |fleet| black_box(p.replay(fleet)),
                    BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
