//! Criterion micro-benchmarks of the scheduling methods (Figs. 5–7
//! workloads at one utilisation point each).
//!
//! These measure *runtime cost* of producing one offline schedule; the
//! figure-shaped outputs come from the `fig5_…`/`fig6_…`/`fig7_…` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::hint::black_box;
use tagio_bench::generate_systems;
use tagio_ga::GaConfig;
use tagio_sched::{
    reconfigure, ConflictGraph, EdfOffline, FpsOffline, GaScheduler, Gpiocp, Scheduler,
    StaticScheduler,
};

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    group.sample_size(10);
    for u in [0.3, 0.6] {
        let sys = generate_systems(u, 1, 42).pop().expect("one system");
        group.bench_with_input(BenchmarkId::new("fps-offline", u), &sys, |b, sys| {
            b.iter(|| black_box(FpsOffline::new().schedule(&sys.jobs)));
        });
        group.bench_with_input(BenchmarkId::new("edf-offline", u), &sys, |b, sys| {
            b.iter(|| black_box(EdfOffline::new().schedule(&sys.jobs)));
        });
        group.bench_with_input(BenchmarkId::new("gpiocp", u), &sys, |b, sys| {
            b.iter(|| black_box(Gpiocp::new().schedule(&sys.jobs)));
        });
        group.bench_with_input(BenchmarkId::new("static", u), &sys, |b, sys| {
            b.iter(|| black_box(StaticScheduler::new().schedule(&sys.jobs)));
        });
        let tiny_ga = GaScheduler::new()
            .with_config(GaConfig {
                population: 16,
                generations: 8,
                ..GaConfig::default()
            })
            .with_seed(1);
        group.bench_with_input(BenchmarkId::new("ga-16x8", u), &sys, |b, sys| {
            b.iter(|| black_box(tiny_ga.search(&sys.jobs)));
        });
    }
    group.finish();
}

fn bench_fps_online_test(c: &mut Criterion) {
    let sys = generate_systems(0.6, 1, 7).pop().expect("one system");
    c.bench_function("fps-online-test", |b| {
        b.iter(|| black_box(tagio_sched::fps_online_schedulable(&sys.tasks)));
    });
}

fn bench_algorithm_phases(c: &mut Criterion) {
    // The static method's phases and the GA's inner loop, in isolation.
    let sys = generate_systems(0.6, 1, 11).pop().expect("one system");
    c.bench_function("conflict-graph-build", |b| {
        b.iter(|| black_box(ConflictGraph::build(&sys.jobs)));
    });
    let graph = ConflictGraph::build(&sys.jobs);
    c.bench_function("graph-decompose", |b| {
        b.iter(|| black_box(graph.decompose(&sys.jobs)));
    });
    let mut rng = StdRng::seed_from_u64(1);
    let starts: Vec<u64> = sys
        .jobs
        .iter()
        .map(|j| {
            let lo = j.window_start().as_micros();
            let hi = j.window_end().as_micros().max(lo);
            rng.random_range(lo..=hi)
        })
        .collect();
    c.bench_function("ga-reconfigure", |b| {
        b.iter(|| black_box(reconfigure(&sys.jobs, &starts)));
    });
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_fps_online_test,
    bench_algorithm_phases
);
criterion_main!(benches);
