//! Criterion bench: the cost of **one GA generation** — population
//! evaluation (the reconfiguration function + Ψ/Υ metrics per genome)
//! followed by NSGA-II survivor selection — at 1 vs. N evaluation threads.
//!
//! This is the hot path the parallel engine refactor targets: at paper
//! scale (`--pop 300 --gens 500`) the GA evaluates 150k genomes per
//! system, so the `threads/4` row tracking ≥ 2× below `threads/1` on a
//! 4-core box is the refactor's perf trajectory. (On a single-core runner
//! the two rows coincide — the engine is bit-identical either way.)
//!
//! ```text
//! cargo bench -p tagio-bench --bench ga_generation
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::hint::black_box;
use tagio_bench::generate_systems;
use tagio_core::job::JobSet;
use tagio_core::metrics;
use tagio_ga::nsga2::rank_and_crowd;
use tagio_ga::{evaluate_population, Objectives, Problem};
use tagio_sched::reconfigure;

/// The I/O scheduling problem exactly as the GA scheduler poses it: one
/// start-time gene per job, reconfiguration before evaluation, the paper's
/// (Ψ, Υ) objectives, (−1, −1) for infeasible layouts.
struct IoProblem<'a> {
    jobs: &'a JobSet,
}

impl Problem for IoProblem<'_> {
    type Gene = u64;

    fn genome_len(&self) -> usize {
        self.jobs.len()
    }

    fn random_gene(&self, locus: usize, rng: &mut dyn Rng) -> u64 {
        let job = &self.jobs.as_slice()[locus];
        let lo = job.window_start().as_micros();
        let hi = job.window_end().as_micros().max(lo);
        rng.random_range(lo..=hi)
    }

    fn evaluate(&self, genome: &[u64]) -> Objectives {
        match reconfigure(self.jobs, genome) {
            Ok(schedule) => Objectives::from(vec![
                metrics::psi(&schedule, self.jobs),
                metrics::upsilon(&schedule, self.jobs),
            ]),
            Err(_) => Objectives::from(vec![-1.0, -1.0]),
        }
    }
}

fn bench_ga_generation(c: &mut Criterion) {
    let sys = generate_systems(0.6, 1, 42).pop().expect("one system");
    let problem = IoProblem { jobs: &sys.jobs };
    let mut rng = StdRng::seed_from_u64(1);
    let population: Vec<Vec<u64>> = (0..256)
        .map(|_| {
            (0..problem.genome_len())
                .map(|locus| problem.random_gene(locus, &mut rng))
                .collect()
        })
        .collect();

    let mut group = c.benchmark_group("ga_generation");
    group.sample_size(10);
    let cores = tagio_core::pool::available_workers();
    let mut counts = vec![1usize, 4, cores];
    counts.sort_unstable();
    counts.dedup(); // duplicate criterion ids are an error on 1- or 4-core boxes
    for threads in counts {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let scores = evaluate_population(&problem, &population, threads);
                    black_box(rank_and_crowd(&scores))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ga_generation);
criterion_main!(benches);
