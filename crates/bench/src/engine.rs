//! The generic experiment engine: [`Sweep`] descriptors, [`Method`]
//! adapters (built from the scheduler registry, the threaded GA, or any
//! closure), and a [`Runner`] that fans each sweep point's systems across
//! a worker pool and folds the outcomes into a structured
//! [`Report`] document.
//!
//! Every experiment binary is a thin declaration on top of this module:
//! describe the sweep, name the methods, run, render.

use crate::report::{MethodReport, PointReport, Report};
use crate::{parallel_map_with, EvalSystem, Options};
use tagio_ga::{hypervolume_2d, GaConfig, Objectives};
use tagio_sched::{
    fps_online_schedulable, GaScheduler, MethodError, MethodSet, SchedulingReport, SolverCtx,
};

/// One point of a sweep: a display label plus the numeric parameter value.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Display label (used as the column header and in JSON).
    pub label: String,
    /// Numeric value handed to system generation and method evaluation.
    pub x: f64,
}

/// A parameter sweep: the swept axis of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Name of the swept parameter (e.g. `U`, `inj.rate`).
    pub parameter: String,
    /// The points, in evaluation (and rendering) order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// A sweep over numeric values, labelled `{x:.2}`.
    #[must_use]
    pub fn over(parameter: impl Into<String>, xs: impl IntoIterator<Item = f64>) -> Self {
        Sweep {
            parameter: parameter.into(),
            points: xs
                .into_iter()
                .map(|x| SweepPoint {
                    label: format!("{x:.2}"),
                    x,
                })
                .collect(),
        }
    }

    /// A sweep with explicit labels.
    #[must_use]
    pub fn labelled(
        parameter: impl Into<String>,
        points: impl IntoIterator<Item = (String, f64)>,
    ) -> Self {
        Sweep {
            parameter: parameter.into(),
            points: points
                .into_iter()
                .map(|(label, x)| SweepPoint { label, x })
                .collect(),
        }
    }

    /// A degenerate single-point sweep, for experiments whose axis is the
    /// method list itself (budget ablations, Table I).
    #[must_use]
    pub fn single(parameter: impl Into<String>, label: impl Into<String>, x: f64) -> Self {
        Sweep {
            parameter: parameter.into(),
            points: vec![SweepPoint {
                label: label.into(),
                x,
            }],
        }
    }
}

/// What one method produced on one system: a feasibility flag plus any
/// named metrics (folded into min/mean/max summaries by the report layer).
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Whether the method found the system feasible/schedulable.
    pub feasible: bool,
    /// Named metric samples, e.g. `("psi", 0.93)`.
    pub metrics: Vec<(String, f64)>,
}

impl Outcome {
    /// A bare feasibility flag with no metrics (Fig. 5's shape).
    #[must_use]
    pub fn flag(feasible: bool) -> Self {
        Outcome {
            feasible,
            metrics: Vec::new(),
        }
    }

    /// An infeasible outcome.
    #[must_use]
    pub fn infeasible() -> Self {
        Self::flag(false)
    }

    /// A feasible outcome carrying metric samples. Accepts any named
    /// collection — `vec![("psi", 0.9)]` or a
    /// [`MetricSet`](tagio_core::MetricSet) snapshot alike.
    #[must_use]
    pub fn with_metrics<N: Into<String>>(metrics: impl IntoIterator<Item = (N, f64)>) -> Self {
        Outcome {
            feasible: true,
            metrics: metrics.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        }
    }

    /// Maps a [`SchedulingReport`]: Ψ/Υ contribute only when schedulable
    /// (the figures average "among schedulable systems").
    #[must_use]
    pub fn from_report(report: &SchedulingReport) -> Self {
        if report.schedulable {
            Outcome::with_metrics(vec![("psi", report.psi), ("upsilon", report.upsilon)])
        } else {
            Outcome::infeasible()
        }
    }
}

/// A named way of evaluating one system of type `S` at one sweep point.
pub struct Method<S> {
    name: String,
    #[allow(clippy::type_complexity)]
    eval: Box<dyn Fn(&S, &SweepPoint) -> Outcome + Sync>,
}

impl<S: Sync> Method<S> {
    /// Wraps a closure as a method.
    pub fn new(
        name: impl Into<String>,
        eval: impl Fn(&S, &SweepPoint) -> Outcome + Sync + 'static,
    ) -> Self {
        Method {
            name: name.into(),
            eval: Box::new(eval),
        }
    }

    /// The method's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates one system at one sweep point.
    #[must_use]
    pub fn evaluate(&self, system: &S, point: &SweepPoint) -> Outcome {
        (self.eval)(system, point)
    }
}

impl Method<EvalSystem> {
    /// A method from the scheduler registry, by (possibly parameterized)
    /// spec (see [`tagio_sched::registry`] for the grammar).
    ///
    /// # Errors
    /// Returns [`MethodError`] for specs the registry rejects.
    pub fn scheduler(name: &str) -> Result<Self, MethodError> {
        let mut methods = Self::from_set(MethodSet::from_names([name])?);
        Ok(methods.remove(0))
    }

    /// One method per entry of a [`MethodSet`] — the bridge from
    /// `--methods fps-offline,static,...` to the engine. Each system is
    /// solved under a [`SolverCtx`] carrying its per-system seed, so
    /// seeded solvers (e.g. a registry `ga:...` spec) vary per system
    /// like the figure binaries' GA does.
    ///
    /// Sweeps that want CLI budgets and the engine's thread split for
    /// the `ga` column use [`Method::from_set_with_ga`].
    #[must_use]
    pub fn from_set(set: MethodSet) -> Vec<Self> {
        set.into_iter()
            .map(|(name, s)| Self::wrap(name, s))
            .collect()
    }

    /// Like [`Method::from_set`], but a `ga` entry is replaced by
    /// [`Method::ga`] with `config` — CLI budget, per-system seeds and the
    /// engine's thread split — so its column stays comparable to the
    /// figure binaries' GA.
    #[must_use]
    pub fn from_set_with_ga(set: MethodSet, config: &GaConfig) -> Vec<Self> {
        set.into_iter()
            .map(|(name, scheduler)| {
                if name == "ga" {
                    Method::ga(name, config.clone())
                } else {
                    Self::wrap(name, scheduler)
                }
            })
            .collect()
    }

    fn wrap(name: String, solver: tagio_sched::BoxedSolver) -> Self {
        Method::new(name, move |sys: &EvalSystem, _: &SweepPoint| {
            let ctx = SolverCtx::seeded(sys.seed);
            let report = SchedulingReport::evaluate_with(solver.as_ref(), &sys.jobs, &ctx)
                .unwrap_or_else(|bug| panic!("{bug}"));
            Outcome::from_report(&report)
        })
    }

    /// The paper's FPS-online curve: not a schedule constructor but the
    /// worst-case response-time test \[18\] on the task set.
    #[must_use]
    pub fn fps_online() -> Self {
        Method::new("fps-online", |sys: &EvalSystem, _: &SweepPoint| {
            Outcome::flag(fps_online_schedulable(&sys.tasks))
        })
    }

    /// The GA with an explicit configuration, seeded per system. Reports
    /// the best Ψ and best Υ over the returned non-dominated front (the
    /// paper's convention for Figs. 6–7) plus the front's hypervolume.
    #[must_use]
    pub fn ga(name: impl Into<String>, config: GaConfig) -> Self {
        Method::new(
            name,
            move |sys: &EvalSystem, _: &SweepPoint| match GaScheduler::new()
                .with_config(config.clone())
                .search_with(&sys.jobs, &SolverCtx::seeded(sys.seed))
            {
                Ok(result) => {
                    let best_psi = result.front.iter().map(|t| t.0).fold(f64::MIN, f64::max);
                    let best_ups = result.front.iter().map(|t| t.1).fold(f64::MIN, f64::max);
                    let front: Vec<Objectives> = result
                        .front
                        .iter()
                        .map(|t| Objectives::from(vec![t.0, t.1]))
                        .collect();
                    Outcome::with_metrics(vec![
                        ("psi", best_psi),
                        ("upsilon", best_ups),
                        ("hypervolume", hypervolume_2d(&front, [0.0, 0.0])),
                    ])
                }
                Err(_) => Outcome::infeasible(),
            },
        )
    }
}

/// Drives one experiment: generates each sweep point's systems, fans every
/// method over them on a worker pool sized by `--threads`, and folds the
/// outcomes into a [`Report`].
pub struct Runner {
    title: String,
    options: Options,
    progress: bool,
}

impl Runner {
    /// A runner for an experiment titled `title`.
    #[must_use]
    pub fn new(title: impl Into<String>, options: Options) -> Self {
        Runner {
            title: title.into(),
            options,
            progress: true,
        }
    }

    /// Disables the per-point progress lines on stderr (tests).
    #[must_use]
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// Runs the experiment: for each sweep point, `generate` produces the
    /// systems (serially — generation is cheap and seed-ordered) and every
    /// method evaluates all of them in parallel, preserving system order.
    ///
    /// The worker pool is `min(threads, systems)` wide; [`Options::ga_config`]
    /// gives the GA the leftover `threads / pool` workers, so nested
    /// parallelism never oversubscribes.
    pub fn run<S: Sync>(
        &self,
        sweep: &Sweep,
        generate: impl Fn(&SweepPoint) -> Vec<S>,
        methods: &[Method<S>],
    ) -> Report {
        let threads = self.options.thread_count();
        let mut points = Vec::with_capacity(sweep.points.len());
        for point in &sweep.points {
            let systems = generate(point);
            let outer = threads.min(systems.len()).max(1);
            let rows = methods
                .iter()
                .map(|method| {
                    let outcomes =
                        parallel_map_with(&systems, outer, |sys| method.evaluate(sys, point));
                    MethodReport::from_outcomes(method.name(), &outcomes)
                })
                .collect();
            if self.progress {
                eprintln!("  {}={} done", sweep.parameter, point.label);
            }
            points.push(PointReport {
                label: point.label.clone(),
                x: point.x,
                methods: rows,
            });
        }
        Report {
            title: self.title.clone(),
            parameter: sweep.parameter.clone(),
            options: self.options.clone(),
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_systems;

    fn quiet_runner(options: Options) -> Runner {
        Runner::new("engine test", options).quiet()
    }

    #[test]
    fn sweep_constructors_label_points() {
        let s = Sweep::over("U", [0.2, 0.25]);
        assert_eq!(s.points[0].label, "0.20");
        assert_eq!(s.points[1].x, 0.25);
        let l = Sweep::labelled("budget", [("20x20".to_owned(), 0.0)]);
        assert_eq!(l.points[0].label, "20x20");
        assert_eq!(Sweep::single("table", "I", 0.0).points.len(), 1);
    }

    #[test]
    fn runner_preserves_method_and_point_order() {
        let opts = Options {
            systems: 4,
            ..Options::default()
        };
        let sweep = Sweep::over("U", [0.3, 0.4]);
        let methods = vec![
            Method::new("even", |sys: &u64, _: &SweepPoint| {
                Outcome::flag(sys.is_multiple_of(2))
            }),
            Method::new("scaled", |sys: &u64, point: &SweepPoint| {
                Outcome::with_metrics(vec![("value", *sys as f64 * point.x)])
            }),
        ];
        let report = quiet_runner(opts).run(&sweep, |_| vec![0, 1, 2, 3], &methods);
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert_eq!(point.methods[0].method, "even");
            assert_eq!(point.methods[1].method, "scaled");
            assert_eq!(point.methods[0].samples, 4);
            assert_eq!(point.methods[0].feasible, 2);
        }
        let scaled = report.points[1].methods[1].metric("value").unwrap();
        // systems 0..4 at x = 0.4: mean of {0, 0.4, 0.8, 1.2}.
        assert!((scaled.mean() - 0.6).abs() < 1e-12);
        assert!((scaled.max() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn runner_output_is_thread_count_invariant() {
        let sweep = Sweep::over("U", [0.4]);
        let methods = Method::from_set(MethodSet::parse("fps-offline,static").unwrap());
        let mut reports = Vec::new();
        for threads in [1, 4] {
            let opts = Options {
                systems: 6,
                threads,
                ..Options::default()
            };
            let report = quiet_runner(opts.clone()).run(
                &sweep,
                |p| generate_systems(p.x, opts.systems, opts.seed),
                &methods,
            );
            reports.push(report.points);
        }
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn scheduler_method_reports_registry_unknowns() {
        assert!(Method::scheduler("static:best-fit").is_ok());
        assert!(Method::scheduler("nope").is_err());
    }

    #[test]
    fn ga_method_reports_front_extremes() {
        let systems = generate_systems(0.3, 1, 7);
        let cfg = GaConfig {
            population: 16,
            generations: 8,
            threads: 1,
            ..GaConfig::default()
        };
        let point = SweepPoint {
            label: "0.30".into(),
            x: 0.3,
        };
        let outcome = Method::ga("ga", cfg).evaluate(&systems[0], &point);
        if outcome.feasible {
            let names: Vec<&str> = outcome.metrics.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, vec!["psi", "upsilon", "hypervolume"]);
        }
    }
}
