//! Structured sweep reports: the one output type every experiment binary
//! shares, rendering both the aligned text tables the figures are read
//! from and machine-readable `--json` documents (schema documented in
//! `EXPERIMENTS.md`).

use crate::engine::Outcome;
use crate::json;
use crate::Options;
use std::fmt::Write as _;
use tagio_sched::Summary;

/// Per-method results at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodReport {
    /// Method display name.
    pub method: String,
    /// Systems (or trials) evaluated.
    pub samples: usize,
    /// How many of them were feasible/schedulable.
    pub feasible: usize,
    /// Named metric distributions over the feasible samples, in first-seen
    /// order.
    pub metrics: Vec<(String, Summary)>,
}

impl MethodReport {
    /// Folds a slice of outcomes into one report row.
    #[must_use]
    pub fn from_outcomes(method: impl Into<String>, outcomes: &[Outcome]) -> Self {
        let mut report = MethodReport {
            method: method.into(),
            samples: outcomes.len(),
            feasible: 0,
            metrics: Vec::new(),
        };
        for outcome in outcomes {
            if outcome.feasible {
                report.feasible += 1;
            }
            for (name, value) in &outcome.metrics {
                match report.metrics.iter_mut().find(|(n, _)| n == name) {
                    Some((_, summary)) => summary.push(*value),
                    None => {
                        let mut summary = Summary::new();
                        summary.push(*value);
                        report.metrics.push((name.clone(), summary));
                    }
                }
            }
        }
        report
    }

    /// Fraction of samples found feasible; `0.0` with no samples.
    #[must_use]
    pub fn feasible_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.feasible as f64 / self.samples as f64
        }
    }

    /// The distribution of metric `name`, if any sample reported it.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&Summary> {
        self.metrics
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, s)| s)
    }
}

/// All method results at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// Display label of the point (e.g. `0.45`).
    pub label: String,
    /// Numeric value of the swept parameter.
    pub x: f64,
    /// One row per method, in method order.
    pub methods: Vec<MethodReport>,
}

/// A complete experiment result: every method at every sweep point, plus
/// the options that produced it (for reproducibility).
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Human-readable experiment title.
    pub title: String,
    /// Name of the swept parameter (e.g. `U`, `inj.rate`).
    pub parameter: String,
    /// The options the run was invoked with.
    pub options: Options,
    /// One entry per sweep point, in sweep order.
    pub points: Vec<PointReport>,
}

impl Report {
    /// Renders the figure-style series table: one column per sweep point,
    /// one row per method. `metric: None` plots the feasible fraction
    /// (Fig. 5's schedulability); `Some(name)` plots that metric's mean
    /// among feasible samples (Figs. 6–7).
    #[must_use]
    pub fn render_series(&self, metric: Option<&str>) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:<14}", self.parameter);
        for point in &self.points {
            let _ = write!(out, " {:>7}", point.label);
        }
        let _ = writeln!(out);
        let methods = self.points.first().map_or(0, |p| p.methods.len());
        for m in 0..methods {
            let name = &self.points[0].methods[m].method;
            let _ = write!(out, "{name:<14}");
            for point in &self.points {
                let row = &point.methods[m];
                let v = match metric {
                    None => row.feasible_fraction(),
                    Some(name) => row.metric(name).map_or(0.0, Summary::mean),
                };
                let _ = write!(out, " {v:>7.3}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the point-by-point statistics table: per method, the
    /// feasible fraction and each metric's `mean [min, max]`.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        for point in &self.points {
            let _ = writeln!(out, "{} = {}", self.parameter, point.label);
            for row in &point.methods {
                let _ = write!(
                    out,
                    "  {:<18} n={:<5} feasible {:>6.3}",
                    row.method,
                    row.samples,
                    row.feasible_fraction()
                );
                for (name, summary) in &row.metrics {
                    let _ = write!(
                        out,
                        " | {name} {:>9.3} [{:.3}, {:.3}]",
                        summary.mean(),
                        summary.min(),
                        summary.max()
                    );
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// Serialises the whole report as one JSON document (schema in
    /// `EXPERIMENTS.md`; guaranteed parseable — see `json::validate`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"title\":{},\"parameter\":{},\"options\":{{\"systems\":{},\"population\":{},\"generations\":{},\"seed\":{},\"threads\":{}}},\"points\":[",
            json::string(&self.title),
            json::string(&self.parameter),
            self.options.systems,
            self.options.population,
            self.options.generations,
            self.options.seed,
            self.options.thread_count(),
        );
        for (i, point) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"x\":{},\"methods\":[",
                json::string(&point.label),
                json::number(point.x)
            );
            for (j, row) in point.methods.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"method\":{},\"samples\":{},\"feasible\":{},\"feasible_fraction\":{},\"metrics\":{{",
                    json::string(&row.method),
                    row.samples,
                    row.feasible,
                    json::number(row.feasible_fraction()),
                );
                for (k, (name, summary)) in row.metrics.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{}:{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
                        json::string(name),
                        summary.count(),
                        json::number(summary.mean()),
                        json::number(summary.min()),
                        json::number(summary.max()),
                    );
                }
                out.push_str("}}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Prints the report: JSON to stdout when `--json` was given,
    /// otherwise the chosen text rendering.
    pub fn emit(&self, text: impl FnOnce(&Report) -> String) {
        if self.options.json {
            println!("{}", self.to_json());
        } else {
            print!("{}", text(self));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let outcomes = [
            Outcome::with_metrics(vec![("psi", 1.0), ("upsilon", 0.8)]),
            Outcome::infeasible(),
            Outcome::with_metrics(vec![("psi", 0.5), ("upsilon", 0.6)]),
        ];
        let row = MethodReport::from_outcomes("static", &outcomes);
        Report {
            title: "unit \"test\" sweep".into(),
            parameter: "U".into(),
            options: Options::default(),
            points: vec![PointReport {
                label: "0.40".into(),
                x: 0.4,
                methods: vec![row],
            }],
        }
    }

    #[test]
    fn from_outcomes_folds_feasibility_and_metrics() {
        let report = sample_report();
        let row = &report.points[0].methods[0];
        assert_eq!(row.samples, 3);
        assert_eq!(row.feasible, 2);
        assert!((row.feasible_fraction() - 2.0 / 3.0).abs() < 1e-12);
        let psi = row.metric("psi").unwrap();
        assert_eq!(psi.count(), 2);
        assert_eq!((psi.min(), psi.max()), (0.5, 1.0));
        assert!(row.metric("latency").is_none());
    }

    #[test]
    fn series_rendering_is_aligned() {
        let report = sample_report();
        let text = report.render_series(Some("psi"));
        assert!(text.starts_with("# unit"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // title, header, one method
        assert!(lines[1].starts_with("U"));
        assert!(lines[2].starts_with("static"));
        assert!(lines[2].contains("0.750")); // mean of 1.0 and 0.5
    }

    #[test]
    fn table_rendering_lists_stats() {
        let text = sample_report().render_table();
        assert!(text.contains("U = 0.40"));
        assert!(text.contains("feasible  0.667"));
        assert!(text.contains("psi     0.750 [0.500, 1.000]"));
    }

    #[test]
    fn json_output_is_well_formed_and_complete() {
        let report = sample_report();
        let doc = report.to_json();
        json::validate(&doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
        for needle in [
            "\"title\":\"unit \\\"test\\\" sweep\"",
            "\"parameter\":\"U\"",
            "\"systems\":20",
            "\"method\":\"static\"",
            "\"psi\":{\"count\":2",
            "\"feasible\":2",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
    }

    #[test]
    fn scheduler_fold_agrees_with_sched_method_stats() {
        // Scheduler-backed outcomes and tagio_sched::MethodStats are two
        // folds over the same SchedulingReports; this pins them to the
        // same "among schedulable systems" semantics.
        use tagio_sched::{MethodStats, SchedulingReport};
        let reports = [
            SchedulingReport {
                method: "static".into(),
                schedulable: true,
                psi: 1.0,
                upsilon: 0.9,
                diagnostic: None,
            },
            SchedulingReport {
                method: "static".into(),
                schedulable: false,
                psi: 0.0,
                upsilon: 0.0,
                diagnostic: None,
            },
            SchedulingReport {
                method: "static".into(),
                schedulable: true,
                psi: 0.4,
                upsilon: 0.5,
                diagnostic: None,
            },
        ];
        let stats = MethodStats::collect("static", reports.iter());
        let outcomes: Vec<Outcome> = reports.iter().map(Outcome::from_report).collect();
        let row = MethodReport::from_outcomes("static", &outcomes);
        assert_eq!(row.samples, stats.samples);
        assert_eq!(row.feasible, stats.schedulable);
        assert!((row.feasible_fraction() - stats.schedulable_fraction()).abs() < 1e-12);
        assert_eq!(*row.metric("psi").unwrap(), stats.psi);
        assert_eq!(*row.metric("upsilon").unwrap(), stats.upsilon);
    }

    #[test]
    fn empty_report_is_valid_json() {
        let report = Report {
            title: "empty".into(),
            parameter: "U".into(),
            options: Options::default(),
            points: Vec::new(),
        };
        json::validate(&report.to_json()).unwrap();
        assert_eq!(report.render_series(None).lines().count(), 2);
    }
}
