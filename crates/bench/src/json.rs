//! Minimal JSON emission and validation.
//!
//! The workspace's vendored `serde` stub carries the trait contract but no
//! serialisation backend (see `vendor/README.md`), so sweep reports emit
//! JSON through these small helpers instead. [`validate`] is a strict
//! recursive-descent parser used by the test-suite (and CI smoke checks)
//! so the emitted schema cannot silently rot.

/// Escapes `s` into a double-quoted JSON string literal.
#[must_use]
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite `f64` as a JSON number; non-finite values become
/// `null` (JSON has no NaN/Infinity).
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A parsed JSON value (the golden-master suite's document model).
///
/// Objects keep key order as a `Vec` — the reports emit keys in a stable
/// order, and [`diff`] reports key-set differences regardless of order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what non-finite numbers serialise to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` on other kinds or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// A one-word name of the value's kind (used in diff messages).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Renders a [`Value`] back to compact JSON text (the inverse of
/// [`parse`], used by the golden-master suite to write *normalised*
/// snapshots so regeneration is byte-stable for unchanged schemas).
#[must_use]
pub fn render(value: &Value) -> String {
    match value {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Number(n) => number(*n),
        Value::String(s) => string(s),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Object(members) => {
            let inner: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("{}:{}", string(k), render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// Parses one complete JSON document into a [`Value`].
///
/// # Errors
/// Returns a message naming the byte offset of the first violation.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Validates that `s` is one complete, well-formed JSON value.
///
/// # Errors
/// Returns a message naming the byte offset of the first violation.
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ())
}

/// Structurally compares two documents, returning one human-readable
/// line per difference (empty when equivalent). Numbers are compared
/// with absolute-or-relative tolerance `tol`; object member *order* is
/// ignored, key sets and everything else must match. This is the
/// golden-master comparison: byte-level churn (whitespace, key order,
/// number formatting) does not trip it, schema or value changes do.
#[must_use]
pub fn diff(expected: &Value, actual: &Value, tol: f64) -> Vec<String> {
    let mut out = Vec::new();
    diff_at("$", expected, actual, tol, &mut out);
    out
}

fn diff_at(path: &str, expected: &Value, actual: &Value, tol: f64, out: &mut Vec<String>) {
    match (expected, actual) {
        (Value::Null, Value::Null) => {}
        (Value::Bool(a), Value::Bool(b)) => {
            if a != b {
                out.push(format!("{path}: expected {a}, got {b}"));
            }
        }
        (Value::Number(a), Value::Number(b)) => {
            let scale = 1.0f64.max(a.abs()).max(b.abs());
            if (a - b).abs() > tol * scale {
                out.push(format!("{path}: expected {a}, got {b}"));
            }
        }
        (Value::String(a), Value::String(b)) => {
            if a != b {
                out.push(format!("{path}: expected {a:?}, got {b:?}"));
            }
        }
        (Value::Array(a), Value::Array(b)) => {
            if a.len() != b.len() {
                out.push(format!(
                    "{path}: expected {} elements, got {}",
                    a.len(),
                    b.len()
                ));
                return;
            }
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                diff_at(&format!("{path}[{i}]"), x, y, tol, out);
            }
        }
        (Value::Object(a), Value::Object(b)) => {
            for (key, x) in a {
                match actual.get(key) {
                    Some(y) => diff_at(&format!("{path}.{key}"), x, y, tol, out),
                    None => out.push(format!("{path}: missing key {key:?}")),
                }
            }
            for (key, _) in b {
                if expected.get(key).is_none() {
                    out.push(format!("{path}: unexpected key {key:?}"));
                }
            }
        }
        _ => out.push(format!(
            "{path}: expected {}, got {}",
            expected.kind(),
            actual.kind()
        )),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b't') => parse_literal(b, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_literal(b, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_literal(b, pos, b"null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8], value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    let mut members = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // '"'
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => match b.get(*pos + 1) {
                Some(&e @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                    out.push(match e {
                        b'b' => '\u{8}',
                        b'f' => '\u{c}',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        other => other as char,
                    });
                    *pos += 2;
                }
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                    }
                    let code = u32::from_str_radix(core::str::from_utf8(hex).expect("hex"), 16)
                        .expect("hex digits");
                    // Surrogates and astral escapes are out of scope for
                    // report documents; map unpairable codes to U+FFFD.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
            },
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let slice = b
                    .get(*pos..*pos + len)
                    .ok_or_else(|| format!("truncated UTF-8 at byte {pos}", pos = *pos))?;
                out.push_str(
                    core::str::from_utf8(slice).map_err(|_| {
                        format!("invalid UTF-8 in string at byte {pos}", pos = *pos)
                    })?,
                );
                *pos += len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}", pos = *pos));
    }
    if int_digits > 1 && b[int_start] == b'0' {
        return Err(format!("leading zero at byte {int_start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!(
                "expected fraction digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!(
                "expected exponent digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    let text = core::str::from_utf8(&b[start..*pos]).expect("ASCII number");
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("unparseable number at byte {start}"))
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("Ψ/Υ"), "\"Ψ/Υ\"");
        validate(&string("quote \" backslash \\ tab \t ctrl \u{1}")).unwrap();
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(-3.0), "-3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        for v in [0.0, 1e-9, 1e12, -0.125] {
            validate(&number(v)).unwrap();
        }
    }

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#"{"a":[1,2,{"b":"x"}],"c":true,"d":null}"#,
            "  [ 1 , \"two\" , [ ] ]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("rejected {ok}: {e}"));
        }
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let v = parse(r#"{"a":[1,2.5,{"b":"x\n"}],"c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].get("b").and_then(Value::as_str), Some("x\n"));
        assert!(v.get("missing").is_none());
        // Round-trip through the emitters.
        let emitted = parse(&string("Ψ \"quoted\" \\ tab\t")).unwrap();
        assert_eq!(emitted.as_str(), Some("Ψ \"quoted\" \\ tab\t"));
    }

    #[test]
    fn render_round_trips_through_parse() {
        let doc = r#"{"a":[1,2.5,{"b":"x\n"},null,true],"c":"Ψ"}"#;
        let v = parse(doc).unwrap();
        let rendered = render(&v);
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn diff_ignores_order_and_formatting_but_not_structure() {
        let a = parse(r#"{"x":1.0,"y":[1,2],"s":"v"}"#).unwrap();
        let same = parse(r#"{ "y":[1, 2.0], "s":"v", "x":1 }"#).unwrap();
        assert!(diff(&a, &same, 1e-9).is_empty());
        let tweaked = parse(r#"{"x":1.0001,"y":[1,2],"s":"v"}"#).unwrap();
        assert_eq!(diff(&a, &tweaked, 1e-9).len(), 1);
        assert!(diff(&a, &tweaked, 1e-2).is_empty(), "within tolerance");
        let missing = parse(r#"{"x":1,"y":[1,2]}"#).unwrap();
        assert!(diff(&a, &missing, 1e-9)[0].contains("missing key"));
        let extra = parse(r#"{"x":1,"y":[1,2],"s":"v","z":0}"#).unwrap();
        assert!(diff(&a, &extra, 1e-9)[0].contains("unexpected key"));
        let wrong_len = parse(r#"{"x":1,"y":[1],"s":"v"}"#).unwrap();
        assert!(diff(&a, &wrong_len, 1e-9)[0].contains("elements"));
        let wrong_kind = parse(r#"{"x":"1","y":[1,2],"s":"v"}"#).unwrap();
        assert!(diff(&a, &wrong_kind, 1e-9)[0].contains("expected number"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} extra",
            "01e",
            "01",
            "-012.5",
            "NaN",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad}");
        }
    }
}
