//! Minimal JSON emission and validation.
//!
//! The workspace's vendored `serde` stub carries the trait contract but no
//! serialisation backend (see `vendor/README.md`), so sweep reports emit
//! JSON through these small helpers instead. [`validate`] is a strict
//! recursive-descent parser used by the test-suite (and CI smoke checks)
//! so the emitted schema cannot silently rot.

/// Escapes `s` into a double-quoted JSON string literal.
#[must_use]
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite `f64` as a JSON number; non-finite values become
/// `null` (JSON has no NaN/Infinity).
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Validates that `s` is one complete, well-formed JSON value.
///
/// # Errors
/// Returns a message naming the byte offset of the first violation.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, b"true"),
        Some(b'f') => parse_literal(b, pos, b"false"),
        Some(b'n') => parse_literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
            },
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}", pos = *pos));
    }
    if int_digits > 1 && b[int_start] == b'0' {
        return Err(format!("leading zero at byte {int_start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!(
                "expected fraction digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!(
                "expected exponent digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("Ψ/Υ"), "\"Ψ/Υ\"");
        validate(&string("quote \" backslash \\ tab \t ctrl \u{1}")).unwrap();
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(-3.0), "-3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        for v in [0.0, 1e-9, 1e12, -0.125] {
            validate(&number(v)).unwrap();
        }
    }

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#"{"a":[1,2,{"b":"x"}],"c":true,"d":null}"#,
            "  [ 1 , \"two\" , [ ] ]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("rejected {ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} extra",
            "01e",
            "01",
            "-012.5",
            "NaN",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad}");
        }
    }
}
