//! # tagio-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (Section V). Each figure has a dedicated binary:
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `fig5_schedulability` | Fig. 5 — schedulability vs. utilisation |
//! | `fig6_psi` | Fig. 6 — Ψ of the offline methods |
//! | `fig7_upsilon` | Fig. 7 — Υ of the offline methods |
//! | `table1_hwcost` | Table I — hardware overhead |
//! | `noc_latency` | §I motivation — request-path latency under contention |
//! | `ablation_lccd` | LCC-D vs First-/Best-/Worst-Fit slot policies |
//! | `ablation_ga` | GA budget sensitivity (population × generations) |
//!
//! Binaries accept `--systems N`, `--pop N`, `--gens N` and `--seed N`
//! overrides; defaults are laptop-scale (documented in EXPERIMENTS.md),
//! the paper's full scale is `--systems 1000 --pop 300 --gens 500`.

#![warn(missing_docs)]
#![warn(clippy::all)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagio_core::job::JobSet;
use tagio_core::task::TaskSet;
use tagio_ga::GaConfig;
use tagio_workload::SystemConfig;

/// Common command-line options of the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Synthetic systems per utilisation point (paper: 1000).
    pub systems: usize,
    /// GA population (paper: 300).
    pub population: usize,
    /// GA generations (paper: 500).
    pub generations: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            systems: 20,
            population: 60,
            generations: 80,
            seed: 2020,
        }
    }
}

impl Options {
    /// Parses `--systems`, `--pop`, `--gens`, `--seed` from the process
    /// arguments, falling back to the defaults.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn from_args() -> Self {
        let mut opts = Options::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> u64 {
                it.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} needs an integer"))
            };
            match flag.as_str() {
                "--systems" => opts.systems = value("--systems") as usize,
                "--pop" => opts.population = value("--pop") as usize,
                "--gens" => opts.generations = value("--gens") as usize,
                "--seed" => opts.seed = value("--seed"),
                other => panic!("unknown flag {other} (try --systems/--pop/--gens/--seed)"),
            }
        }
        opts
    }

    /// The GA configuration implied by these options.
    #[must_use]
    pub fn ga_config(&self) -> GaConfig {
        GaConfig {
            population: self.population,
            generations: self.generations,
            ..GaConfig::default()
        }
    }
}

/// One generated evaluation system with its expanded jobs.
#[derive(Debug, Clone)]
pub struct EvalSystem {
    /// Per-system seed (derived from the base seed).
    pub seed: u64,
    /// The task set.
    pub tasks: TaskSet,
    /// Its jobs over one hyper-period.
    pub jobs: JobSet,
}

/// Generates `count` systems at utilisation `u` (paper §V.A parameters).
#[must_use]
pub fn generate_systems(u: f64, count: usize, base_seed: u64) -> Vec<EvalSystem> {
    (0..count)
        .map(|i| {
            let seed = base_seed
                .wrapping_mul(1_000_003)
                .wrapping_add((u * 100.0) as u64 * 7919)
                .wrapping_add(i as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let tasks = SystemConfig::paper(u).generate(&mut rng);
            let jobs = JobSet::expand(&tasks);
            EvalSystem { seed, tasks, jobs }
        })
        .collect()
}

/// Maps `f` over `items` on all available cores, preserving order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(4)
        .min(items.len());
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (slots, values) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(values) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Arithmetic mean, 0.0 for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// The Fig. 5 utilisation sweep (0.2 … 0.9, step 0.05).
#[must_use]
pub fn fig5_sweep() -> Vec<f64> {
    tagio_workload::paper_utilisation_sweep()
}

/// The Figs. 6–7 utilisation sweep (0.3 … 0.7, step 0.1 as plotted).
#[must_use]
pub fn fig67_sweep() -> Vec<f64> {
    vec![0.3, 0.4, 0.5, 0.6, 0.7]
}

/// Prints a row of `values` under a label, space-aligned (our figures are
/// textual tables; pipe into a plotting tool of your choice).
pub fn print_series(label: &str, values: &[f64]) {
    print!("{label:<14}");
    for v in values {
        print!(" {v:>7.3}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_laptop_scale() {
        let o = Options::default();
        assert!(o.systems <= 50);
        assert!(o.population < 300);
    }

    #[test]
    fn generate_systems_is_deterministic() {
        let a = generate_systems(0.4, 3, 1);
        let b = generate_systems(0.4, 3, 1);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tasks, y.tasks);
        }
    }

    #[test]
    fn systems_differ_across_seeds_and_indices() {
        let a = generate_systems(0.4, 2, 1);
        let b = generate_systems(0.4, 2, 2);
        assert_ne!(a[0].tasks, a[1].tasks);
        assert_ne!(a[0].tasks, b[0].tasks);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, |x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn sweeps_match_paper_ranges() {
        assert_eq!(fig5_sweep().len(), 15);
        assert_eq!(fig67_sweep(), vec![0.3, 0.4, 0.5, 0.6, 0.7]);
    }
}
