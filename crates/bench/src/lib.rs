//! # tagio-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (Section V). Each figure has a dedicated binary:
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `fig5_schedulability` | Fig. 5 — schedulability vs. utilisation |
//! | `fig6_psi` | Fig. 6 — Ψ of the offline methods |
//! | `fig7_upsilon` | Fig. 7 — Υ of the offline methods |
//! | `table1_hwcost` | Table I — hardware overhead |
//! | `noc_latency` | §I motivation — request-path latency under contention |
//! | `ablation_lccd` | LCC-D vs First-/Best-/Worst-Fit slot policies |
//! | `ablation_ga` | GA budget sensitivity (population × generations) |
//! | `ablation_baselines` | classic baselines (FPS, EDF, GPIOCP) at a glance |
//! | `online_scenarios` | beyond the paper — online repair vs. full re-synthesis |
//! | `fleet_scenarios` | beyond the paper — multi-partition fleet vs. one partition |
//!
//! All binaries run on the shared experiment [`engine`] — a [`Sweep`]
//! descriptor, named [`Method`]s resolved through the scheduler registry,
//! and a [`Runner`] that fans systems across a worker pool — and emit
//! either aligned text tables or `--json` documents ([`report::Report`]).
//!
//! Binaries accept `--systems N`, `--pop N`, `--gens N`, `--seed N`,
//! `--threads N` (worker pool size, `0` = all cores) and `--json`;
//! defaults are laptop-scale (documented in EXPERIMENTS.md, along with
//! expected runtimes and the JSON schema). The paper's full scale is
//! `--systems 1000 --pop 300 --gens 500`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod engine;
pub mod json;
pub mod report;

pub use engine::{Method, Outcome, Runner, Sweep, SweepPoint};
pub use report::Report;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagio_core::job::JobSet;
use tagio_core::task::TaskSet;
use tagio_ga::GaConfig;
use tagio_workload::SystemConfig;

/// Common command-line options of the experiment binaries.
///
/// GA population/generation defaults come from [`GaConfig::quick`]; the
/// paper's published 300×500 lives in [`GaConfig::paper`] (the single
/// source of those parameters — see [`Options::paper_scale`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Synthetic systems per utilisation point (paper: 1000).
    pub systems: usize,
    /// GA population.
    pub population: usize,
    /// GA generations.
    pub generations: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads shared by the sweep and the GA (`0` = all cores).
    pub threads: usize,
    /// Emit the report as JSON instead of text tables.
    pub json: bool,
    /// Optional comma-separated method-registry override (binaries that
    /// support it pass this to [`tagio_sched::MethodSet::parse`]).
    pub methods: Option<String>,
    /// Optional comma-separated GA budget-list override
    /// (`POPxGENS[+seed]`, e.g. `20x20,50x50+seed`) — supported by
    /// `ablation_ga` only.
    pub budgets: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        let quick = GaConfig::quick();
        Options {
            systems: 20,
            population: quick.population,
            generations: quick.generations,
            seed: 2020,
            threads: 0,
            json: false,
            methods: None,
            budgets: None,
        }
    }
}

impl Options {
    /// The paper's full evaluation scale: 1000 systems per point and
    /// [`GaConfig::paper`]'s population × generations.
    #[must_use]
    pub fn paper_scale() -> Self {
        let paper = GaConfig::paper();
        Options {
            systems: 1000,
            population: paper.population,
            generations: paper.generations,
            ..Options::default()
        }
    }

    /// Parses `--systems`, `--pop`, `--gens`, `--seed`, `--threads`,
    /// `--json` and `--methods` from the process arguments, falling back
    /// to the defaults.
    ///
    /// Flag misuse (unknown flag, missing or non-integer value) prints a
    /// usage error to stderr and exits with code 2 — every misuse path of
    /// every experiment binary must end in a non-zero exit (pinned by
    /// `tests/cli_exit.rs`).
    #[must_use]
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|e| usage_error(&e))
    }

    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = Options::default();
        let args: Vec<String> = args.collect();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            let int = |name: &str, v: String| -> Result<u64, String> {
                v.parse().map_err(|_| format!("{name} needs an integer"))
            };
            match flag.as_str() {
                "--systems" => opts.systems = int("--systems", value("--systems")?)? as usize,
                "--pop" => opts.population = int("--pop", value("--pop")?)? as usize,
                "--gens" => opts.generations = int("--gens", value("--gens")?)? as usize,
                "--seed" => opts.seed = int("--seed", value("--seed")?)?,
                "--threads" => opts.threads = int("--threads", value("--threads")?)? as usize,
                "--json" => opts.json = true,
                "--methods" => opts.methods = Some(value("--methods")?),
                "--budgets" => opts.budgets = Some(value("--budgets")?),
                other => {
                    return Err(format!(
                        "unknown flag {other} (try --systems/--pop/--gens/--seed/--threads/--json/--methods/--budgets)"
                    ))
                }
            }
        }
        Ok(opts)
    }

    /// Guard for binaries with a fixed method list: `--methods` must not
    /// be silently ignored. Usage error (exit 2) when `--methods` was
    /// given.
    pub fn reject_methods_override(&self, binary: &str) {
        if self.methods.is_some() {
            usage_error(&format!(
                "--methods is not supported by {binary} (its method list is fixed)"
            ));
        }
    }

    /// Guard for every binary except `ablation_ga`: `--budgets` must not
    /// be silently ignored. Usage error (exit 2) when it was given.
    pub fn reject_budgets_override(&self, binary: &str) {
        if self.budgets.is_some() {
            usage_error(&format!(
                "--budgets is not supported by {binary} (only ablation_ga sweeps GA budgets)"
            ));
        }
    }

    /// Parses the `--budgets` list into `(population, generations,
    /// ideal-seeded)` triples, or the given default when absent. Usage
    /// error (exit 2) on a malformed entry.
    #[must_use]
    pub fn budget_list(&self, default: &[(usize, usize, bool)]) -> Vec<(usize, usize, bool)> {
        let Some(csv) = &self.budgets else {
            return default.to_vec();
        };
        let parse_entry = |entry: &str| -> Option<(usize, usize, bool)> {
            let (spec, seeded) = match entry.strip_suffix("+seed") {
                Some(spec) => (spec, true),
                None => (entry, false),
            };
            let (pop, gens) = spec.split_once('x')?;
            Some((pop.parse().ok()?, gens.parse().ok()?, seeded))
        };
        let budgets: Vec<(usize, usize, bool)> = csv
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|entry| {
                parse_entry(entry.trim()).unwrap_or_else(|| {
                    usage_error(&format!(
                        "--budgets: malformed entry `{entry}` (expected POPxGENS or POPxGENS+seed)"
                    ))
                })
            })
            .collect();
        if budgets.is_empty() {
            usage_error("--budgets: empty budget list");
        }
        budgets
    }

    /// Guard for binaries that sweep their own fixed GA budget list:
    /// `--pop`/`--gens` must not be silently ignored (and misrecorded in
    /// the JSON provenance block). Usage error (exit 2) on an override.
    pub fn reject_ga_budget_override(&self, binary: &str) {
        let default = Options::default();
        if self.population != default.population || self.generations != default.generations {
            usage_error(&format!(
                "--pop/--gens are not supported by {binary} (its GA budget list is fixed)"
            ));
        }
    }

    /// The resolved worker-pool width: `--threads`, or every available
    /// core when `0` — via the one workspace-wide resolution rule
    /// ([`tagio_core::pool::available_workers`]), so every binary
    /// (throughput, fleet_scenarios, the GA sweeps) reads `--threads 0`
    /// identically. See EXPERIMENTS.md, "Threading model".
    #[must_use]
    pub fn thread_count(&self) -> usize {
        tagio_core::pool::resolve_width(self.threads)
    }

    /// The GA configuration implied by these options, based on
    /// [`GaConfig::quick`] with the CLI's population/generations.
    ///
    /// GA-internal evaluation threads are the workers left over after the
    /// sweep's outer `parallel_map` over systems claims its share, so the
    /// two parallel layers compose without oversubscribing: sweeping many
    /// systems runs each GA serially, while a sweep of fewer systems than
    /// cores (e.g. one paper-scale run) hands the spare cores to the GA.
    #[must_use]
    pub fn ga_config(&self) -> GaConfig {
        let total = self.thread_count();
        let outer = total.min(self.systems.max(1));
        GaConfig {
            population: self.population,
            generations: self.generations,
            threads: (total / outer).max(1),
            ..GaConfig::quick()
        }
    }
}

/// Prints a usage error to stderr and exits with code 2 (the
/// conventional CLI usage-error status). Every flag-misuse path of every
/// experiment binary funnels through here so none can exit 0.
pub fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// One generated evaluation system with its expanded jobs.
#[derive(Debug, Clone)]
pub struct EvalSystem {
    /// Per-system seed (derived from the base seed).
    pub seed: u64,
    /// The task set.
    pub tasks: TaskSet,
    /// Its jobs over one hyper-period.
    pub jobs: JobSet,
}

/// Generates `count` systems at utilisation `u` (paper §V.A parameters).
#[must_use]
pub fn generate_systems(u: f64, count: usize, base_seed: u64) -> Vec<EvalSystem> {
    (0..count)
        .map(|i| {
            let seed = base_seed
                .wrapping_mul(1_000_003)
                .wrapping_add((u * 100.0) as u64 * 7919)
                .wrapping_add(i as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let tasks = SystemConfig::paper(u).generate(&mut rng);
            let jobs = JobSet::expand(&tasks);
            EvalSystem { seed, tasks, jobs }
        })
        .collect()
}

/// Maps `f` over `items` on all available cores, preserving order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, tagio_core::pool::available_workers(), f)
}

/// Maps `f` over `items` with chunking width `threads` on the shared
/// persistent [`tagio_core::pool::WorkerPool`], preserving order
/// (results are written back by index, so the output is identical to a
/// serial map for any width). Delegates to the same chunked map the GA
/// engine evaluates populations with ([`tagio_ga::chunk_map`]).
pub fn parallel_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    tagio_ga::chunk_map(items, threads, f)
}

/// Arithmetic mean, 0.0 for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// The `p`-th percentile of `values` (nearest-rank on a sorted copy):
/// `percentile(v, 50.0)` is the median, `percentile(v, 99.0)` the tail
/// the latency tables report. `0.0` for an empty slice; `p` is clamped
/// to `0..=100`. NaN samples sort last (they only surface at p=100 of a
/// NaN-bearing slice).
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The Fig. 5 utilisation sweep (0.2 … 0.9, step 0.05).
#[must_use]
pub fn fig5_sweep() -> Vec<f64> {
    tagio_workload::paper_utilisation_sweep()
}

/// The Figs. 6–7 utilisation sweep (0.3 … 0.7, step 0.1 as plotted).
#[must_use]
pub fn fig67_sweep() -> Vec<f64> {
    vec![0.3, 0.4, 0.5, 0.6, 0.7]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| (*s).to_string())).expect("valid test args")
    }

    #[test]
    fn defaults_are_laptop_scale() {
        let o = Options::default();
        assert!(o.systems <= 50);
        assert!(o.population < 300);
        assert_eq!(o.threads, 0);
        assert!(!o.json);
    }

    #[test]
    fn defaults_come_from_quick_config() {
        let (o, quick) = (Options::default(), GaConfig::quick());
        assert_eq!(o.population, quick.population);
        assert_eq!(o.generations, quick.generations);
        let p = Options::paper_scale();
        let paper = GaConfig::paper();
        assert_eq!(p.systems, 1000);
        assert_eq!(p.population, paper.population);
        assert_eq!(p.generations, paper.generations);
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--systems",
            "7",
            "--pop",
            "40",
            "--gens",
            "9",
            "--seed",
            "5",
            "--threads",
            "3",
            "--json",
            "--methods",
            "static,ga",
        ]);
        assert_eq!(o.systems, 7);
        assert_eq!(o.population, 40);
        assert_eq!(o.generations, 9);
        assert_eq!(o.seed, 5);
        assert_eq!(o.threads, 3);
        assert!(o.json);
        assert_eq!(o.methods.as_deref(), Some("static,ga"));
    }

    #[test]
    fn budget_list_parses_and_defaults() {
        let default = [(20, 20, false), (50, 50, true)];
        assert_eq!(Options::default().budget_list(&default), default.to_vec());
        let custom = Options {
            budgets: Some("8x8, 12x16+seed".into()),
            ..Options::default()
        };
        assert_eq!(
            custom.budget_list(&default),
            vec![(8, 8, false), (12, 16, true)]
        );
    }

    #[test]
    fn rejects_malformed_argument_lists() {
        let err = |args: &[&str]| {
            Options::parse(args.iter().map(|s| (*s).to_string())).expect_err("must be rejected")
        };
        assert!(err(&["--bogus"]).contains("unknown flag"));
        assert!(err(&["--systems"]).contains("needs a value"));
        assert!(err(&["--systems", "many"]).contains("needs an integer"));
        assert!(err(&["--seed", "1", "--gens"]).contains("needs a value"));
    }

    #[test]
    fn thread_count_resolves_zero_to_all_cores() {
        let o = Options::default();
        assert!(o.thread_count() >= 1);
        let fixed = Options {
            threads: 3,
            ..Options::default()
        };
        assert_eq!(fixed.thread_count(), 3);
    }

    #[test]
    fn ga_config_splits_threads_between_layers() {
        // Many systems: the outer sweep takes every worker, the GA runs
        // serially inside each.
        let wide = Options {
            systems: 64,
            threads: 8,
            ..Options::default()
        };
        assert_eq!(wide.ga_config().threads, 1);
        // Few systems: spare workers go to the GA.
        let narrow = Options {
            systems: 2,
            threads: 8,
            ..Options::default()
        };
        assert_eq!(narrow.ga_config().threads, 4);
        let single = Options {
            systems: 1,
            threads: 8,
            ..Options::default()
        };
        assert_eq!(single.ga_config().threads, 8);
    }

    #[test]
    fn generate_systems_is_deterministic() {
        let a = generate_systems(0.4, 3, 1);
        let b = generate_systems(0.4, 3, 1);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tasks, y.tasks);
        }
    }

    #[test]
    fn systems_differ_across_seeds_and_indices() {
        let a = generate_systems(0.4, 2, 1);
        let b = generate_systems(0.4, 2, 2);
        assert_ne!(a[0].tasks, a[1].tasks);
        assert_ne!(a[0].tasks, b[0].tasks);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, |x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        for threads in [1, 3, 7, 200] {
            assert_eq!(parallel_map_with(&items, threads, |x| x * 2), doubled);
        }
        assert!(parallel_map_with(&items[..0], 4, |x| *x).is_empty());
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 75.0), 3.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
        // Out-of-range p clamps instead of panicking.
        assert_eq!(percentile(&v, -3.0), 1.0);
        assert_eq!(percentile(&v, 250.0), 4.0);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        // A deterministic heavy-tailed latency-like sample.
        let samples: Vec<f64> = (1..=200).map(|i| f64::from(i * i % 977)).collect();
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = percentile(&samples, p);
            assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
        assert!(percentile(&samples, 99.0) >= percentile(&samples, 50.0));
    }

    #[test]
    fn sweeps_match_paper_ranges() {
        assert_eq!(fig5_sweep().len(), 15);
        assert_eq!(fig67_sweep(), vec![0.3, 0.4, 0.5, 0.6, 0.7]);
    }
}
