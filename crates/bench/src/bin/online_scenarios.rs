//! Online scheduling under streaming events: **incremental repair vs.
//! full re-synthesis** on arrival-rate sweeps.
//!
//! Each system is a seeded [`Scenario`] — a paper-§V.A base workload plus
//! a stream of arrivals, departures, a mode change and utilisation
//! spikes — replayed through the `tagio-online` service twice: once with
//! the incremental-repair strategy (repair → neighbourhood repair → full
//! re-synthesis → FPS guarantee) and once always re-synthesising from
//! scratch. Reported per method:
//!
//! * `acceptance` — admitted / attempted arrivals;
//! * `repair_latency_us` — mean wall-clock admission-construction
//!   latency (the headline: incremental should sit ≥ 5× below full
//!   re-synthesis on this default sweep — pinned by a deterministic
//!   seeded test in `tagio-online`), **not deterministic** across runs;
//! * `psi` / `upsilon` — the live schedule's quality after the stream;
//! * `psi_drop` — Ψ degradation versus the bootstrapped base schedule;
//! * `shed` — tasks dropped to survive overload spikes, split into
//!   `shed_overload` (decided by arithmetic) and `shed_infeasible`
//!   (construction kept failing) from the solvers' diagnostics;
//! * `rej_overload` / `rej_infeasible` — arrival rejections by
//!   diagnostic cause (admission gate vs. failed integration).
//!
//! The sweep axis is the number of arrival attempts per scenario.
//! Scenario event-trace format and JSON schema: EXPERIMENTS.md.
//!
//! Flags: `--systems N` (scenarios per point) `--seed N`, `--threads N`
//! (worker pool, `0` = all cores), `--json`.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin online_scenarios -- --systems 10
//! ```

use tagio_bench::{Method, Options, Outcome, Runner, Sweep};
use tagio_online::scenario::{Scenario, ScenarioConfig};
use tagio_online::service::RepairStrategy;
use tagio_sched::SlotPolicy;

fn strategy_method(name: &str, strategy: RepairStrategy) -> Method<Scenario> {
    Method::new(name, move |scenario: &Scenario, _| {
        let out = scenario.replay(strategy, SlotPolicy::default());
        Outcome::with_metrics(vec![
            ("acceptance", out.acceptance),
            ("repair_latency_us", out.mean_admission_micros),
            ("psi", out.psi),
            ("upsilon", out.upsilon),
            ("psi_drop", out.psi_drop),
            ("shed", out.shed as f64),
            // Shed/reject reasons from the solvers' Infeasible
            // diagnostics: arithmetic overload vs. failed construction.
            ("shed_overload", out.shed_overload as f64),
            ("shed_infeasible", out.shed_infeasible as f64),
            ("rej_overload", out.reject_overload as f64),
            ("rej_infeasible", out.reject_infeasible as f64),
        ])
    })
}

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("online_scenarios");
    opts.reject_methods_override("online_scenarios");
    opts.reject_ga_budget_override("online_scenarios"); // no GA here
    let title = format!(
        "online scenarios — incremental repair vs full re-synthesis ({} scenarios/point)",
        opts.systems
    );
    // The default arrival sweep (shared with tagio-online's regression
    // tests): arrival attempts per scenario.
    let sweep = Sweep::labelled(
        "arrivals",
        [4.0, 8.0, 12.0, 16.0].map(|x| (format!("{x:.0}"), x)),
    );
    let methods = vec![
        strategy_method("incremental", RepairStrategy::Incremental),
        strategy_method("full-resynth", RepairStrategy::FullResynthesis),
    ];
    let seed = opts.seed;
    let systems = opts.systems;
    let report = Runner::new(title, opts.clone()).run(
        &sweep,
        |point| {
            let arrivals = point.x as usize;
            (0..systems)
                .map(|i| {
                    Scenario::generate(&ScenarioConfig {
                        arrivals,
                        seed: seed
                            .wrapping_mul(1_000_003)
                            .wrapping_add(arrivals as u64 * 7919)
                            .wrapping_add(i as u64),
                        ..ScenarioConfig::default()
                    })
                })
                .collect::<Vec<_>>()
        },
        &methods,
    );
    report.emit(tagio_bench::Report::render_table);
}
