//! Event-throughput trajectory: **allocation-lean hot path vs. the naive
//! baseline** over partition count × task-set size × arrival rate.
//!
//! Each sweep point is a seeded [`FleetScenario`] replayed twice through
//! [`FleetScheduler::apply_batch`] with identical events: once with
//! `FleetConfig { lean: false, .. }` (full Ψ/Υ recomputation, conservative
//! cache invalidation, fresh repair scratch per admission) and once with
//! the default `lean: true` hot path (cached quality, blocking-aware
//! invalidation, reused arenas). Decisions are bit-identical either way —
//! pinned by `crates/online/tests/quality_props.rs` — so the columns
//! differ only in cost, and the lean/naive `events_per_sec` ratio is the
//! performance trajectory this binary exists to pin.
//!
//! Reported per method:
//!
//! * `events_per_sec` — replayed events / wall-clock seconds (the
//!   headline; **not deterministic** across runs);
//! * `p50_us` / `p99_us` — admission-latency percentiles in microseconds
//!   over every [`EventOutcome::Admitted`] in the stream (nearest-rank,
//!   see [`tagio_bench::percentile`]; wall clock, not deterministic);
//! * `repair_invocations` — repairs + full re-syntheses across all
//!   partitions (deterministic, equal between columns);
//! * `cache_hit_rate` — analysis-cache hits / lookups folded over the
//!   partitions (deterministic; *higher* under lean invalidation);
//! * `acceptance` — fleet-unique admitted / routed arrivals
//!   (deterministic, equal between columns).
//!
//! The sweep leans into the fast-reject regime (high base utilisation,
//! dense arrivals): a near-capacity partition decides most arrivals at
//! the admission gate, where the naive path still pays two full O(jobs)
//! Ψ/Υ scans per verdict and the lean path reads a cached pair.
//!
//! Schema v2 adds a **thread-scaling column**: the lean hot path is
//! additionally replayed through the persistent worker pool at widths 2
//! and 4 (`lean-w2`, `lean-w4`). The fleet clamps the pool to the
//! partition count (workers are per-partition lanes), and the staged
//! epoch pipeline keeps schedules and stats bit-identical at every
//! width — the deterministic metrics of all four columns must agree,
//! and on a multi-core box the `lean-wN` rows expose lane scaling on
//! the multi-partition points.
//!
//! Flags: `--systems N` (scenarios per point), `--seed N`, `--threads N`
//! (worker pool for the *outer* scenario fan-out, `0` = all cores),
//! `--json`. JSON schema (versioned, `schema_version` is diffed by CI
//! against the committed `BENCH_throughput.json`): EXPERIMENTS.md.
//!
//! For committed wall-clock numbers use `--threads 1`: the outer
//! fan-out measures scenarios concurrently, so any width above the
//! machine's core count inflates every scenario's wall time with
//! contention that is a measurement artifact, not scheduler cost.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin throughput -- --threads 1 --json > BENCH_throughput.json
//! ```

use std::time::Instant;
use tagio_bench::{percentile, Method, Options, Outcome, Runner, Sweep};
use tagio_core::event::SystemEvent;
use tagio_core::MetricSet;
use tagio_online::fleet::{FleetConfig, FleetScheduler};
use tagio_online::scenario::{FleetScenario, FleetScenarioConfig};
use tagio_online::EventOutcome;
use tagio_sched::Summary;

/// Version of the emitted JSON envelope. Bump when the envelope or the
/// metric vocabulary above changes shape; CI diffs this against the
/// committed `BENCH_throughput.json`. v2: `lean-w2`/`lean-w4`
/// thread-scaling columns.
const SCHEMA_VERSION: u32 = 2;

/// Events per routing epoch during replay (larger than the
/// `fleet_scenarios` batch: throughput is the point here, and batching
/// amortises the router's per-epoch work).
const BATCH: usize = 16;

/// The throughput sweep: (partitions, base utilisation, arrivals,
/// churn), labelled `NNp-uUU-aAA`. `churn: false` disables departures,
/// spikes and the mode change, so a near-capacity partition *stays* at
/// capacity — the admission gate then decides nearly every arrival, which
/// is exactly where the naive path's two per-verdict Ψ/Υ scans cost the
/// most and the lean path reads a cached pair. The churning points keep
/// the repair ladder honest (both columns do identical repair work).
const SWEEP: [(u32, f64, usize, bool); 5] = [
    (1, 0.40, 64, true),
    (2, 0.55, 128, true),
    (2, 0.90, 256, false),
    (4, 0.90, 384, false),
    (1, 0.90, 2048, false),
];

/// Replays `scenario` once with the given hot-path mode and fleet
/// worker-pool width, and measures the run: throughput,
/// admission-latency percentiles, repair-ladder invocations and cache
/// behaviour. `workers` is [`FleetConfig::threads`] — the fleet clamps
/// it to the partition count, and every width produces bit-identical
/// decisions (the `lean-wN` columns differ from `lean` only in cost).
fn measure(scenario: &FleetScenario, lean: bool, workers: usize) -> Outcome {
    let config = FleetConfig {
        threads: workers,
        lean,
        ..FleetConfig::default()
    };
    let mut fleet = FleetScheduler::bootstrap(&scenario.bases, config);
    let stream: Vec<SystemEvent> = scenario.events.iter().map(|e| e.event.clone()).collect();
    let mut latencies_us: Vec<f64> = Vec::new();
    let started = Instant::now();
    for chunk in stream.chunks(BATCH) {
        for out in fleet.apply_batch(chunk) {
            if let EventOutcome::Admitted { latency, .. } = out.outcome {
                latencies_us.push(latency.as_secs_f64() * 1e6);
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let aggregate = fleet.aggregate_stats();
    let (hits, misses) = fleet
        .partitions()
        .iter()
        .fold((0usize, 0usize), |(h, m), p| {
            (h + p.cache().hits(), m + p.cache().misses())
        });
    let lookups = hits + misses;
    let mut set = MetricSet::new();
    set.push(
        "events_per_sec",
        if elapsed > 0.0 {
            stream.len() as f64 / elapsed
        } else {
            0.0
        },
    );
    set.push("p50_us", percentile(&latencies_us, 50.0));
    set.push("p99_us", percentile(&latencies_us, 99.0));
    set.push(
        "repair_invocations",
        (aggregate.repairs + aggregate.resyntheses) as f64,
    );
    set.push(
        "cache_hit_rate",
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
    );
    set.push("acceptance", fleet.stats().acceptance_ratio());
    Outcome::with_metrics(set)
}

/// The scenario for sweep point `ix`, system `i` — every parameter comes
/// off the static sweep through the validating builder.
fn scenario(ix: usize, seed: u64, i: usize) -> FleetScenario {
    let (partitions, utilisation, arrivals, churn) = SWEEP[ix];
    let mut builder = FleetScenarioConfig::builder()
        .partitions(partitions)
        .base_utilisation(utilisation)
        .arrivals(arrivals)
        .seed(
            seed.wrapping_mul(1_000_003)
                .wrapping_add(arrivals as u64 * 7919)
                .wrapping_add(u64::from(partitions) * 104_729)
                .wrapping_add(i as u64),
        );
    if !churn {
        builder = builder
            .departure_permille(0)
            .spike_every(0)
            .mode_change(false);
    }
    let config = builder.build().expect("static sweep points are valid");
    FleetScenario::generate(&config)
}

/// Wraps the engine report in the versioned envelope CI diffs against
/// the committed `BENCH_throughput.json`.
fn json_envelope(report: &tagio_bench::Report) -> String {
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"benchmark\":\"throughput\",\"report\":{}}}",
        report.to_json()
    )
}

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("throughput");
    opts.reject_methods_override("throughput");
    opts.reject_ga_budget_override("throughput"); // no GA here
    let title = format!(
        "throughput — allocation-lean hot path vs naive baseline ({} scenarios/point)",
        opts.systems
    );
    // x is the sweep index: the generate closure decodes it back into
    // (partitions, utilisation, arrivals) via the SWEEP table.
    let sweep = Sweep::labelled(
        "fleet",
        SWEEP
            .iter()
            .enumerate()
            .map(|(i, (partitions, utilisation, arrivals, _))| {
                (
                    format!(
                        "{partitions}p-u{:02}-a{arrivals}",
                        (utilisation * 100.0).round() as u32
                    ),
                    i as f64,
                )
            })
            .collect::<Vec<_>>(),
    );
    let methods = vec![
        Method::new("naive", |s: &FleetScenario, _| measure(s, false, 1)),
        Method::new("lean", |s: &FleetScenario, _| measure(s, true, 1)),
        Method::new("lean-w2", |s: &FleetScenario, _| measure(s, true, 2)),
        Method::new("lean-w4", |s: &FleetScenario, _| measure(s, true, 4)),
    ];
    let seed = opts.seed;
    let systems = opts.systems;
    let json = opts.json;
    let report = Runner::new(title, opts).run(
        &sweep,
        |point| {
            let ix = point.x as usize;
            (0..systems).map(|i| scenario(ix, seed, i)).collect()
        },
        &methods,
    );
    if json {
        println!("{}", json_envelope(&report));
    } else {
        print!("{}", report.render_table());
        for point in &report.points {
            let eps = |name: &str| {
                point
                    .methods
                    .iter()
                    .find(|m| m.method == name)
                    .and_then(|m| m.metric("events_per_sec"))
                    .map_or(0.0, Summary::mean)
            };
            let (naive, lean) = (eps("naive"), eps("lean"));
            if naive > 0.0 {
                println!(
                    "  {}: lean/naive events/sec speedup {:.2}x",
                    point.label,
                    lean / naive
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(out: &Outcome, name: &str) -> f64 {
        out.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing metric {name}"))
    }

    #[test]
    fn measured_latency_distribution_is_sane() {
        let out = measure(&scenario(1, 7, 0), true, 1);
        let (p50, p99) = (metric(&out, "p50_us"), metric(&out, "p99_us"));
        assert!(p50 >= 0.0 && p99 >= p50, "p50={p50} p99={p99}");
        assert!(metric(&out, "events_per_sec") > 0.0);
        let hit_rate = metric(&out, "cache_hit_rate");
        assert!((0.0..=1.0).contains(&hit_rate));
        let acceptance = metric(&out, "acceptance");
        assert!((0.0..=1.0).contains(&acceptance));
        assert!(metric(&out, "repair_invocations").is_finite());
    }

    #[test]
    fn lean_and_naive_agree_on_every_deterministic_metric() {
        // The two columns differ only in cost: decisions (and hence
        // acceptance and repair counts) are bit-identical. The full
        // per-event proof lives in crates/online/tests/quality_props.rs.
        for ix in [0, 2] {
            let s = scenario(ix, 11, 0);
            let naive = measure(&s, false, 1);
            let lean = measure(&s, true, 1);
            assert_eq!(metric(&naive, "acceptance"), metric(&lean, "acceptance"));
            assert_eq!(
                metric(&naive, "repair_invocations"),
                metric(&lean, "repair_invocations")
            );
            // Lean invalidation keeps strictly more entries alive.
            assert!(
                metric(&lean, "cache_hit_rate") >= metric(&naive, "cache_hit_rate"),
                "point {ix}"
            );
        }
    }

    #[test]
    fn pooled_widths_agree_on_every_deterministic_metric() {
        // The thread-scaling columns must differ from `lean` only in
        // wall-clock cost: a multi-partition point replayed at widths
        // 1, 2 and 4 yields identical decisions, repair counts and
        // cache behaviour (the epoch pipeline commits lanes in
        // partition-id order regardless of worker count). The per-event
        // proof lives in crates/online/tests/pool_determinism.rs.
        let s = scenario(3, 13, 0); // 4 partitions: widths actually differ
        let base = measure(&s, true, 1);
        for workers in [2usize, 4] {
            let wide = measure(&s, true, workers);
            for name in ["acceptance", "repair_invocations", "cache_hit_rate"] {
                assert_eq!(
                    metric(&base, name),
                    metric(&wide, name),
                    "{name} diverged at width {workers}"
                );
            }
        }
    }

    #[test]
    fn latency_percentiles_are_monotone_in_task_set_size() {
        // The measurement maths on a deterministic latency model: each
        // admission over a task set of `size` jobs costs size² + jitter,
        // so both percentiles must grow with the set size.
        let mut last = (0.0, 0.0);
        for size in [8usize, 16, 32, 64] {
            let samples: Vec<f64> = (0..size * 10)
                .map(|i| (size * size + i % size) as f64)
                .collect();
            let (p50, p99) = (percentile(&samples, 50.0), percentile(&samples, 99.0));
            assert!(p99 >= p50, "size {size}");
            assert!(p50 > last.0 && p99 > last.1, "size {size}");
            last = (p50, p99);
        }
    }

    #[test]
    fn json_envelope_is_valid_and_versioned() {
        // The throughput binary is deliberately absent from the golden
        // suite (its output is wall-clock-dominated and the full sweep
        // is minutes-slow unoptimised); the envelope shape is pinned
        // here instead, and CI diffs `schema_version` against the
        // committed BENCH_throughput.json.
        let report = tagio_bench::Report {
            title: "t".into(),
            parameter: "fleet".into(),
            options: Options::default(),
            points: Vec::new(),
        };
        let doc = json_envelope(&report);
        tagio_bench::json::validate(&doc).expect("envelope is valid JSON");
        assert!(doc.starts_with("{\"schema_version\":2,"));
        assert!(doc.contains("\"benchmark\":\"throughput\""));
        assert!(doc.contains("\"report\":{"));
    }

    #[test]
    fn every_sweep_point_generates() {
        // The paper workload generator only accepts utilisations in
        // multiples of 0.05; catch a bad SWEEP entry here, not at run
        // time.
        for (ix, &(partitions, ..)) in SWEEP.iter().enumerate() {
            let s = scenario(ix, 1, 0);
            assert_eq!(s.bases.len(), partitions as usize);
            assert!(!s.events.is_empty());
        }
    }

    #[test]
    fn sweep_labels_are_unique_and_decode_back() {
        let labels: Vec<String> = SWEEP
            .iter()
            .map(|(p, u, a, _)| format!("{p}p-u{:02}-a{a}", (u * 100.0).round() as u32))
            .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), SWEEP.len());
    }
}
