//! Multi-tenant heavy traffic: **QoS contracts vs an open fleet**.
//!
//! Each system is a seeded tenant-tagged [`FleetScenario`]: Zipf tenant
//! popularity (hot tenants dominate), a diurnal load curve (demand
//! swings 0.5×–1.5× over the stream), and correlated burst storms (a
//! drawn tenant pins a run of arrivals onto one origin device). Fleets
//! sweep well past the `fleet_scenarios` sizes — up to 16 partitions ×
//! 192 arrivals — so the router's tenant gates run saturated.
//!
//! Two methods replay identical traffic:
//!
//! * `qos` — the scenario's tenant contracts enforced
//!   ([`FleetScenarioConfig::tenant_registry`]: the hottest tenants run
//!   best-effort on half-share quotas, the rest guaranteed), so the
//!   router applies hard quota gates plus deficit-weighted fair
//!   admission under saturation;
//! * `open` — the trivial registry: same tagged traffic, no contracts,
//!   every tenant competes unchecked (the pre-tenant fleet behaviour).
//!
//! On top of the shared fleet schema
//! ([`FleetReplayOutcome::metric_set`]), each tenant contributes four
//! trailing columns — `tn<k>_acceptance`, `tn<k>_shed`, `tn<k>_rej`,
//! `tn<k>_psi` — so the table shows exactly who pays for saturation:
//! under `qos` the best-effort hot tenants absorb the rejections while
//! guaranteed tenants hold their acceptance; under `open` the pain
//! spreads indiscriminately.
//!
//! Flags: `--systems N` (scenarios per point), `--seed N`, `--threads N`
//! (worker pool, `0` = all cores), `--json`. JSON schema: EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin tenant_scenarios -- --systems 5
//! ```

use tagio_bench::{Method, Options, Outcome, Runner, Sweep};
use tagio_online::fleet::FleetConfig;
use tagio_online::scenario::{FleetReplayOutcome, FleetScenario, FleetScenarioConfig};
use tagio_online::tenant::TenantRegistry;

/// Events per routing epoch during replay.
const BATCH: usize = 4;

/// The heavy-traffic sweep: (partitions, arrivals) pairs, labelled
/// `PxA` — deliberately beyond the largest `fleet_scenarios` point
/// (4x32), so aggregate demand outruns fleet headroom.
const SWEEP: [(u32, usize); 3] = [(4, 64), (8, 128), (16, 192)];

/// Tenants per scenario; the hottest [`BEST_EFFORT`] run best-effort.
const TENANTS: u32 = 6;
const BEST_EFFORT: u32 = 2;

fn scenario_config(partitions: u32, arrivals: usize, seed: u64) -> FleetScenarioConfig {
    FleetScenarioConfig {
        partitions,
        arrivals,
        seed,
        tenants: TENANTS,
        best_effort_tenants: BEST_EFFORT,
        tenant_zipf: 1.1,
        diurnal_period: 32,
        burst_every: 16,
        burst_len: 4,
        ..FleetScenarioConfig::default()
    }
}

fn metrics(out: &FleetReplayOutcome) -> Outcome {
    // The shared fleet schema plus four per-tenant columns, named by
    // `FleetReplayOutcome::metric_set` — never a binary-local list.
    Outcome::with_metrics(out.metric_set())
}

fn replay(scenario: &FleetScenario, registry: TenantRegistry) -> FleetReplayOutcome {
    scenario.replay(
        FleetConfig {
            threads: 1, // the engine parallelises across systems instead
            tenants: registry,
            ..FleetConfig::default()
        },
        BATCH,
    )
}

/// QoS contracts on: the scenario's implied registry gates the router.
fn qos_method() -> Method<(FleetScenario, TenantRegistry)> {
    Method::new(
        "qos",
        |(scenario, registry): &(FleetScenario, TenantRegistry), _| {
            metrics(&replay(scenario, registry.clone()))
        },
    )
}

/// Contracts off: identical tagged traffic through the trivial registry.
fn open_method() -> Method<(FleetScenario, TenantRegistry)> {
    Method::new(
        "open",
        |(scenario, _): &(FleetScenario, TenantRegistry), _| {
            metrics(&replay(scenario, TenantRegistry::new()))
        },
    )
}

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("tenant_scenarios");
    opts.reject_methods_override("tenant_scenarios");
    opts.reject_ga_budget_override("tenant_scenarios"); // no GA here
    let title = format!(
        "tenant scenarios — QoS contracts vs an open fleet under heavy traffic ({} scenarios/point)",
        opts.systems
    );
    let sweep = Sweep::labelled(
        "fleet",
        SWEEP.map(|(partitions, arrivals)| {
            (
                format!("{partitions}x{arrivals}"),
                f64::from(partitions) * 1000.0 + arrivals as f64,
            )
        }),
    );
    let methods = vec![qos_method(), open_method()];
    let seed = opts.seed;
    let systems = opts.systems;
    let report = Runner::new(title, opts.clone()).run(
        &sweep,
        |point| {
            // Decode the combined axis (partitions * 1000 + arrivals).
            let partitions = (point.x / 1000.0) as u32;
            let arrivals = (point.x as usize) % 1000;
            (0..systems)
                .map(|i| {
                    let config = scenario_config(
                        partitions,
                        arrivals,
                        seed.wrapping_mul(1_000_003)
                            .wrapping_add(arrivals as u64 * 7919)
                            .wrapping_add(u64::from(partitions) * 104_729)
                            .wrapping_add(i as u64),
                    );
                    (FleetScenario::generate(&config), config.tenant_registry())
                })
                .collect::<Vec<_>>()
        },
        &methods,
    );
    report.emit(tagio_bench::Report::render_table);
}
