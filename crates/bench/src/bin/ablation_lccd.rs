//! Ablation: the LCC-D slot-selection policy of Algorithm 1 vs classical
//! First-Fit / Best-Fit / Worst-Fit, on schedulability and Ψ.
//!
//! DESIGN.md calls out slot selection as the load-bearing design choice of
//! the static method's third phase; this bench quantifies it.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin ablation_lccd -- --systems 100
//! ```

use tagio_bench::{fig5_sweep, generate_systems, mean, parallel_map, Options};
use tagio_core::metrics;
use tagio_sched::{Scheduler, SlotPolicy, StaticScheduler};

fn main() {
    let opts = Options::from_args();
    println!(
        "# LCC-D ablation ({} systems/point): schedulable fraction | mean psi",
        opts.systems
    );
    let policies = [
        ("lcc-d", SlotPolicy::LeastContentionCapacityDecreasing),
        ("first-fit", SlotPolicy::FirstFit),
        ("best-fit", SlotPolicy::BestFit),
        ("worst-fit", SlotPolicy::WorstFit),
    ];
    print!("{:<11}", "U");
    for (name, _) in &policies {
        print!(" {name:>19}");
    }
    println!();
    for &u in fig5_sweep().iter().filter(|u| **u >= 0.4) {
        let systems = generate_systems(u, opts.systems, opts.seed);
        print!("{u:<11.2}");
        for &(_, policy) in &policies {
            let results = parallel_map(&systems, |sys| {
                StaticScheduler::with_policy(policy)
                    .schedule(&sys.jobs)
                    .map(|s| metrics::psi(&s, &sys.jobs))
            });
            let sched =
                results.iter().filter(|r| r.is_some()).count() as f64 / results.len() as f64;
            let psis: Vec<f64> = results.iter().filter_map(|r| *r).collect();
            print!("      {sched:>6.3} |{:>6.3}", mean(&psis));
        }
        println!();
    }
}
