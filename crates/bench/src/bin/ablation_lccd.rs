//! Ablation: the LCC-D slot-selection policy of Algorithm 1 vs classical
//! First-Fit / Best-Fit / Worst-Fit, on schedulability and Ψ.
//!
//! DESIGN.md calls out slot selection as the load-bearing design choice of
//! the static method's third phase; this bench quantifies it. The policy
//! variants are the registry's `static:*` entries; `--methods LIST`
//! swaps in any other registered names.
//!
//! Flags: `--systems N --seed N`, `--methods LIST`, `--threads N` (worker
//! pool, `0` = all cores), `--json` (structured report on stdout; schema
//! in EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p tagio-bench --bin ablation_lccd -- --systems 100
//! ```

use tagio_bench::{fig5_sweep, generate_systems, Method, Options, Runner, Sweep};
use tagio_sched::MethodSet;

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("ablation_lccd");
    let title = format!(
        "LCC-D ablation ({} systems/point): slot policies of Algorithm 1",
        opts.systems
    );
    let sweep = Sweep::over("U", fig5_sweep().into_iter().filter(|u| *u >= 0.4));
    let set = match &opts.methods {
        Some(csv) => MethodSet::parse(csv)
            .unwrap_or_else(|e| tagio_bench::usage_error(&format!("--methods: {e}"))),
        None => MethodSet::parse("static:lcc-d,static:first-fit,static:best-fit,static:worst-fit")
            .expect("registered"),
    };
    let methods = Method::from_set_with_ga(set, &opts.ga_config());
    let report = Runner::new(title, opts.clone()).run(
        &sweep,
        |p| generate_systems(p.x, opts.systems, opts.seed),
        &methods,
    );
    report.emit(tagio_bench::Report::render_table);
}
