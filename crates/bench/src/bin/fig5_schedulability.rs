//! Regenerates **Fig. 5**: system schedulability of each scheduling method
//! vs. total utilisation.
//!
//! Methods: FPS-offline (simulated), FPS-online (response-time test \[18\]),
//! GPIOCP (FIFO replay), the static heuristic (Algorithm 1) and the GA.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin fig5_schedulability -- --systems 100
//! ```

use tagio_bench::{fig5_sweep, generate_systems, parallel_map, print_series, Options};
use tagio_sched::{
    fps_online_schedulable, FpsOffline, GaScheduler, Gpiocp, Scheduler, StaticScheduler,
};

fn main() {
    let opts = Options::from_args();
    println!(
        "# Fig. 5 — schedulability vs utilisation ({} systems/point, GA {}x{})",
        opts.systems, opts.population, opts.generations
    );
    let sweep = fig5_sweep();
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); 5];

    for &u in &sweep {
        let systems = generate_systems(u, opts.systems, opts.seed);
        let ga_cfg = opts.ga_config();
        let results = parallel_map(&systems, |sys| {
            let fps_off = FpsOffline::new().schedule(&sys.jobs).is_some();
            let fps_on = fps_online_schedulable(&sys.tasks);
            let gpiocp = Gpiocp::new().schedule(&sys.jobs).is_some();
            let stat = StaticScheduler::new().schedule(&sys.jobs).is_some();
            let ga = GaScheduler::new()
                .with_config(ga_cfg.clone())
                .with_seed(sys.seed)
                .search(&sys.jobs)
                .is_some();
            [fps_off, fps_on, gpiocp, stat, ga]
        });
        for (row, method) in rows.iter_mut().enumerate() {
            let ok = results.iter().filter(|r| r[row]).count();
            method.push(ok as f64 / results.len() as f64);
        }
        eprintln!("  U={u:.2} done");
    }

    print!("{:<14}", "U");
    for u in &sweep {
        print!(" {u:>7.2}");
    }
    println!();
    for (label, row) in ["fps-offline", "fps-online", "gpiocp", "static", "ga"]
        .iter()
        .zip(&rows)
    {
        print_series(label, row);
    }
}
