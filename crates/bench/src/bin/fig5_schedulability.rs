//! Regenerates **Fig. 5**: system schedulability of each scheduling method
//! vs. total utilisation.
//!
//! Methods: FPS-offline (simulated), FPS-online (response-time test \[18\]),
//! GPIOCP (FIFO replay), the static heuristic (Algorithm 1) and the GA —
//! all but FPS-online resolved by name from the scheduler registry.
//!
//! Flags: `--systems N --pop N --gens N --seed N`, `--threads N` (worker
//! pool for the sweep and the GA, `0` = all cores), `--json` (structured
//! report on stdout; schema in EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p tagio-bench --bin fig5_schedulability -- --systems 100
//! cargo run --release -p tagio-bench --bin fig5_schedulability -- --systems 2 --gens 5 --json
//! ```

use tagio_bench::{fig5_sweep, generate_systems, Method, Options, Runner, Sweep};

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("fig5_schedulability");
    opts.reject_methods_override("fig5_schedulability");
    let title = format!(
        "Fig. 5 — schedulability vs utilisation ({} systems/point, GA {}x{})",
        opts.systems, opts.population, opts.generations
    );
    let sweep = Sweep::over("U", fig5_sweep());
    let methods = vec![
        Method::scheduler("fps-offline").expect("registered"),
        Method::fps_online(),
        Method::scheduler("gpiocp").expect("registered"),
        Method::scheduler("static").expect("registered"),
        Method::ga("ga", opts.ga_config()),
    ];
    let report = Runner::new(title, opts.clone()).run(
        &sweep,
        |p| generate_systems(p.x, opts.systems, opts.seed),
        &methods,
    );
    report.emit(|r| r.render_series(None));
}
