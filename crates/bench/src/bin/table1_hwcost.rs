//! Regenerates **Table I**: hardware overhead of the evaluated I/O
//! controllers, plus the §V.B headline ratios.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin table1_hwcost
//! ```

use tagio_hwcost::components::{gpiocp, microblaze_basic, microblaze_full, proposed};
use tagio_hwcost::render_table1;

fn main() {
    println!("# Table I — hardware overhead of evaluated I/O controllers");
    println!("{}", render_table1());

    let p = proposed().cost;
    let g = gpiocp().cost;
    let mbb = microblaze_basic().cost;
    let mbf = microblaze_full().cost;
    println!("# paper's headline comparisons (section V.B)");
    println!(
        "vs MB-F : {:.1}% LUTs, {:.1}% registers, {:.1}% power",
        p.lut_ratio_percent(&mbf),
        p.register_ratio_percent(&mbf),
        p.power_ratio_percent(&mbf),
    );
    println!(
        "vs MB-B : {:.1}% LUTs, {:.1}% registers, {:.1}% power",
        p.lut_ratio_percent(&mbb),
        p.register_ratio_percent(&mbb),
        p.power_ratio_percent(&mbb),
    );
    println!(
        "vs GPIOCP: +{:.1}% LUTs, +{:.1}% registers (scheduling support)",
        p.lut_ratio_percent(&g) - 100.0,
        p.register_ratio_percent(&g) - 100.0,
    );
}
