//! Regenerates **Table I**: hardware overhead of the evaluated I/O
//! controllers, plus the §V.B headline ratios.
//!
//! Text mode keeps the paper-shaped table from `tagio_hwcost`; under
//! `--json` the rows run through the shared experiment engine (one method
//! per controller; metrics `luts`, `registers`, `dsps`, `bram_kb`,
//! `power_mw`) so the output matches every other binary's schema.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin table1_hwcost
//! cargo run --release -p tagio-bench --bin table1_hwcost -- --json
//! ```

use tagio_bench::{Method, Options, Outcome, Runner, Sweep};
use tagio_hwcost::components::{
    gpiocp, microblaze_basic, microblaze_full, proposed, table1_components,
};
use tagio_hwcost::render_table1;

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("table1_hwcost");
    opts.reject_methods_override("table1_hwcost");
    opts.reject_ga_budget_override("table1_hwcost"); // no GA here; don't misrecord provenance
    let sweep = Sweep::single("table", "I", 0.0);
    let methods: Vec<Method<()>> = table1_components()
        .into_iter()
        .map(|component| {
            Method::new(component.name, move |(), _| {
                let c = component.cost;
                Outcome::with_metrics(vec![
                    ("luts", f64::from(c.luts)),
                    ("registers", f64::from(c.registers)),
                    ("dsps", f64::from(c.dsps)),
                    ("bram_kb", f64::from(c.bram_kb)),
                    ("power_mw", f64::from(c.power_mw)),
                ])
            })
        })
        .collect();
    let report = Runner::new(
        "Table I — hardware overhead of evaluated I/O controllers",
        opts,
    )
    .quiet()
    .run(&sweep, |_| vec![()], &methods);
    report.emit(|_| {
        let mut text = String::from("# Table I — hardware overhead of evaluated I/O controllers\n");
        text.push_str(&render_table1());
        text.push('\n');

        let p = proposed().cost;
        let g = gpiocp().cost;
        let mbb = microblaze_basic().cost;
        let mbf = microblaze_full().cost;
        text.push_str("# paper's headline comparisons (section V.B)\n");
        text.push_str(&format!(
            "vs MB-F : {:.1}% LUTs, {:.1}% registers, {:.1}% power\n",
            p.lut_ratio_percent(&mbf),
            p.register_ratio_percent(&mbf),
            p.power_ratio_percent(&mbf),
        ));
        text.push_str(&format!(
            "vs MB-B : {:.1}% LUTs, {:.1}% registers, {:.1}% power\n",
            p.lut_ratio_percent(&mbb),
            p.register_ratio_percent(&mbb),
            p.power_ratio_percent(&mbb),
        ));
        text.push_str(&format!(
            "vs GPIOCP: +{:.1}% LUTs, +{:.1}% registers (scheduling support)\n",
            p.lut_ratio_percent(&g) - 100.0,
            p.register_ratio_percent(&g) - 100.0,
        ));
        text
    });
}
