//! Multi-partition online scheduling: **placement policies on a fleet vs.
//! a single partition at equal aggregate load**.
//!
//! Each system is a seeded [`FleetScenario`] — per-device base workloads
//! plus one fleet-wide event stream whose arrivals carry skewed origin
//! devices — replayed through a
//! [`FleetScheduler`](tagio_online::fleet::FleetScheduler) once per
//! placement policy, and once more
//! *collapsed* onto a single partition (identical events and base tasks,
//! one device's capacity): the `single` baseline column. The sweep axis
//! combines partition count and arrival count (`PxA` labels), so the
//! table reads as partition count × arrival rate × placement policy.
//!
//! Reported per method:
//!
//! * `acceptance` — fleet-unique admitted / routed arrivals (the
//!   headline: every fleet column must sit at or above `single` at the
//!   same point — pinned by `crates/online/tests/fleet.rs`);
//! * `retries` / `retry_adm` — cross-partition re-offers attempted, and
//!   admissions that needed one;
//! * `migrations` — admissions on a partition other than the arrival's
//!   origin device;
//! * `repair_latency_us` — mean admission-construction latency across
//!   all partitions (wall clock, **not deterministic** across runs);
//! * `psi` / `upsilon` — mean live-schedule quality over busy
//!   partitions after the stream;
//! * `shed` — tasks dropped fleet-wide to survive spikes;
//! * `rej_overload` / `rej_infeasible` — final rejection causes carried
//!   through the retry chain (admission gate vs. failed integration).
//!
//! Replays batch 4 events per epoch and run each fleet single-threaded
//! inside the method (the experiment engine already parallelises across
//! systems); results are identical for any thread split.
//!
//! Flags: `--systems N` (scenarios per point), `--seed N`, `--threads N`
//! (worker pool, `0` = all cores), `--json`. JSON schema: EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin fleet_scenarios -- --systems 5
//! ```

use tagio_bench::{Method, Options, Outcome, Runner, Sweep};
use tagio_online::fleet::{FleetConfig, PlacementPolicy};
use tagio_online::scenario::{FleetReplayOutcome, FleetScenario, FleetScenarioConfig};

/// Events per routing epoch during replay.
const BATCH: usize = 4;

/// The default fleet sweep (shared with `crates/online/tests/fleet.rs`):
/// (partitions, arrivals) pairs, labelled `PxA`.
const SWEEP: [(u32, usize); 4] = [(2, 8), (2, 16), (4, 16), (4, 32)];

fn metrics(out: &FleetReplayOutcome) -> Outcome {
    // One schema for every consumer: the column names come from
    // `FleetReplayOutcome::metric_set` (shared with the `throughput`
    // bench), not from a binary-local list that could drift.
    Outcome::with_metrics(out.metric_set())
}

fn fleet_config(policy: PlacementPolicy) -> FleetConfig {
    FleetConfig {
        policy,
        threads: 1, // the engine parallelises across systems instead
        ..FleetConfig::default()
    }
}

fn policy_method(policy: PlacementPolicy) -> Method<FleetScenario> {
    Method::new(policy.as_str(), move |scenario: &FleetScenario, _| {
        metrics(&scenario.replay(fleet_config(policy), BATCH))
    })
}

/// The equal-aggregate-load baseline: the same scenario collapsed onto
/// one partition (best-fit routing is irrelevant with one target).
fn single_method() -> Method<FleetScenario> {
    Method::new("single", |scenario: &FleetScenario, _| {
        metrics(
            &scenario
                .collapsed()
                .replay(fleet_config(PlacementPolicy::BestFit), BATCH),
        )
    })
}

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("fleet_scenarios");
    opts.reject_methods_override("fleet_scenarios");
    opts.reject_ga_budget_override("fleet_scenarios"); // no GA here
    let title = format!(
        "fleet scenarios — placement policies vs a single partition ({} scenarios/point)",
        opts.systems
    );
    let sweep = Sweep::labelled(
        "fleet",
        SWEEP.map(|(partitions, arrivals)| {
            (
                format!("{partitions}x{arrivals}"),
                f64::from(partitions) * 1000.0 + arrivals as f64,
            )
        }),
    );
    let methods = vec![
        policy_method(PlacementPolicy::FirstFit),
        policy_method(PlacementPolicy::BestFit),
        policy_method(PlacementPolicy::Rebalance),
        single_method(),
    ];
    let seed = opts.seed;
    let systems = opts.systems;
    let report = Runner::new(title, opts.clone()).run(
        &sweep,
        |point| {
            // Decode the combined axis (partitions * 1000 + arrivals).
            let partitions = (point.x / 1000.0) as u32;
            let arrivals = (point.x as usize) % 1000;
            (0..systems)
                .map(|i| {
                    FleetScenario::generate(&FleetScenarioConfig {
                        partitions,
                        arrivals,
                        seed: seed
                            .wrapping_mul(1_000_003)
                            .wrapping_add(arrivals as u64 * 7919)
                            .wrapping_add(u64::from(partitions) * 104_729)
                            .wrapping_add(i as u64),
                        ..FleetScenarioConfig::default()
                    })
                })
                .collect::<Vec<_>>()
        },
        &methods,
    );
    report.emit(tagio_bench::Report::render_table);
}
