//! Regenerates **Fig. 7**: Υ (normalised aggregate quality, Eq. (2)) of the
//! offline scheduling methods among schedulable systems.
//!
//! For the GA the best Υ over the returned non-dominated front is reported,
//! as in the paper.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin fig7_upsilon -- --systems 100
//! ```

use tagio_bench::{fig67_sweep, generate_systems, mean, parallel_map, print_series, Options};
use tagio_core::metrics;
use tagio_sched::{FpsOffline, GaScheduler, Gpiocp, Scheduler, StaticScheduler};

fn main() {
    let opts = Options::from_args();
    println!(
        "# Fig. 7 — upsilon of offline methods ({} systems/point, GA {}x{})",
        opts.systems, opts.population, opts.generations
    );
    let sweep = fig67_sweep();
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); 4];

    for &u in &sweep {
        let systems = generate_systems(u, opts.systems, opts.seed);
        let ga_cfg = opts.ga_config();
        let results = parallel_map(&systems, |sys| {
            let fps = FpsOffline::new()
                .schedule(&sys.jobs)
                .map(|s| metrics::upsilon(&s, &sys.jobs));
            let gp = Gpiocp::new()
                .schedule(&sys.jobs)
                .map(|s| metrics::upsilon(&s, &sys.jobs));
            let st = StaticScheduler::new()
                .schedule(&sys.jobs)
                .map(|s| metrics::upsilon(&s, &sys.jobs));
            let ga = GaScheduler::new()
                .with_config(ga_cfg.clone())
                .with_seed(sys.seed)
                .search(&sys.jobs)
                .map(|r| r.front.iter().map(|t| t.1).fold(f64::MIN, f64::max));
            [fps, gp, st, ga]
        });
        for (row, series) in rows.iter_mut().enumerate() {
            let values: Vec<f64> = results.iter().filter_map(|r| r[row]).collect();
            series.push(mean(&values));
        }
        eprintln!("  U={u:.2} done");
    }

    print!("{:<14}", "U");
    for u in &sweep {
        print!(" {u:>7.2}");
    }
    println!();
    for (label, row) in ["fps", "gpiocp", "static", "ga"].iter().zip(&rows) {
        print_series(label, row);
    }
}
