//! Regenerates **Fig. 7**: Υ (normalised aggregate quality, Eq. (2)) of the
//! offline scheduling methods among schedulable systems.
//!
//! For the GA the best Υ over the returned non-dominated front is reported,
//! as in the paper.
//!
//! Flags: `--systems N --pop N --gens N --seed N`, `--threads N` (worker
//! pool for the sweep and the GA, `0` = all cores), `--json` (structured
//! report on stdout; schema in EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p tagio-bench --bin fig7_upsilon -- --systems 100
//! ```

use tagio_bench::{fig67_sweep, generate_systems, Method, Options, Runner, Sweep};

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("fig7_upsilon");
    opts.reject_methods_override("fig7_upsilon");
    let title = format!(
        "Fig. 7 — upsilon of offline methods ({} systems/point, GA {}x{})",
        opts.systems, opts.population, opts.generations
    );
    let sweep = Sweep::over("U", fig67_sweep());
    let methods = vec![
        Method::scheduler("fps-offline").expect("registered"),
        Method::scheduler("gpiocp").expect("registered"),
        Method::scheduler("static").expect("registered"),
        Method::ga("ga", opts.ga_config()),
    ];
    let report = Runner::new(title, opts.clone()).run(
        &sweep,
        |p| generate_systems(p.x, opts.systems, opts.seed),
        &methods,
    );
    report.emit(|r| r.render_series(Some("upsilon")));
}
