//! Extended baseline comparison: adds non-preemptive EDF (deadline-driven,
//! timing-accuracy-blind) next to the paper's methods, confirming that *any*
//! work-conserving classic scheduler — priority- or deadline-driven — gets
//! Ψ ≈ 0 and a Vmin-floor Υ, regardless of its schedulability.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin ablation_baselines -- --systems 30
//! ```

use tagio_bench::{generate_systems, mean, parallel_map, Options};
use tagio_core::metrics;
use tagio_sched::{EdfOffline, FpsOffline, Gpiocp, Scheduler, StaticScheduler};

fn main() {
    let opts = Options::from_args();
    println!(
        "# baselines at a glance ({} systems/point): schedulable | psi | upsilon",
        opts.systems
    );
    println!(
        "{:<6} {:>24} {:>24} {:>24} {:>24}",
        "U", "fps-offline", "edf-offline", "gpiocp", "static"
    );
    for u in [0.3, 0.5, 0.7, 0.9] {
        let systems = generate_systems(u, opts.systems, opts.seed);
        print!("{u:<6.2}");
        let methods: Vec<Box<dyn Scheduler + Sync>> = vec![
            Box::new(FpsOffline::new()),
            Box::new(EdfOffline::new()),
            Box::new(Gpiocp::new()),
            Box::new(StaticScheduler::new()),
        ];
        for method in &methods {
            let results = parallel_map(&systems, |sys| {
                method
                    .schedule(&sys.jobs)
                    .map(|s| (metrics::psi(&s, &sys.jobs), metrics::upsilon(&s, &sys.jobs)))
            });
            let sched =
                results.iter().filter(|r| r.is_some()).count() as f64 / results.len() as f64;
            let psis: Vec<f64> = results.iter().filter_map(|r| r.map(|x| x.0)).collect();
            let upss: Vec<f64> = results.iter().filter_map(|r| r.map(|x| x.1)).collect();
            print!(
                "   {sched:>5.2} |{:>5.2} |{:>5.2}  ",
                mean(&psis),
                mean(&upss)
            );
        }
        println!();
    }
}
