//! Extended baseline comparison: adds non-preemptive EDF (deadline-driven,
//! timing-accuracy-blind) next to the paper's methods, confirming that *any*
//! work-conserving classic scheduler — priority- or deadline-driven — gets
//! Ψ ≈ 0 and a Vmin-floor Υ, regardless of its schedulability.
//!
//! The method list comes from the scheduler registry and is overridable:
//! `--methods fps-offline,edf-offline,gpiocp,static` (any registered names).
//!
//! Flags: `--systems N --seed N`, `--methods LIST`, `--threads N` (worker
//! pool, `0` = all cores), `--json` (structured report on stdout; schema
//! in EXPERIMENTS.md). Selecting `ga` also honours `--pop`/`--gens`.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin ablation_baselines -- --systems 30
//! ```

use tagio_bench::{generate_systems, Method, Options, Runner, Sweep};
use tagio_sched::MethodSet;

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("ablation_baselines");
    let set = match &opts.methods {
        Some(csv) => MethodSet::parse(csv)
            .unwrap_or_else(|e| tagio_bench::usage_error(&format!("--methods: {e}"))),
        None => MethodSet::parse("fps-offline,edf-offline,gpiocp,static").expect("registered"),
    };
    let title = format!(
        "baselines at a glance ({} systems/point): {}",
        opts.systems,
        set.names().join(", ")
    );
    let sweep = Sweep::over("U", [0.3, 0.5, 0.7, 0.9]);
    // A `ga` entry gets the CLI budget, per-system seeds and the thread
    // split, keeping its column comparable to the figure binaries.
    let methods = Method::from_set_with_ga(set, &opts.ga_config());
    let report = Runner::new(title, opts.clone()).run(
        &sweep,
        |p| generate_systems(p.x, opts.systems, opts.seed),
        &methods,
    );
    report.emit(tagio_bench::Report::render_table);
}
