//! Ablation: GA budget sensitivity — how population size and generation
//! count move Ψ, Υ and front hypervolume at a fixed utilisation.
//!
//! The paper runs 300×500; the laptop-scale defaults of the other binaries
//! run far less. This bench shows what the budget buys (and that the trend
//! conclusions hold at reduced scale). Each budget is one engine method on
//! a single-point sweep; `+seed` engages the ideal-seeding extension.
//!
//! Flags: `--systems N --seed N`, `--threads N` (worker pool for the sweep
//! and the GA, `0` = all cores), `--json` (structured report on stdout;
//! schema in EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p tagio-bench --bin ablation_ga -- --systems 10
//! ```

use tagio_bench::{generate_systems, Method, Options, Runner, Sweep};
use tagio_ga::GaConfig;

fn main() {
    let opts = Options::from_args();
    opts.reject_methods_override("ablation_ga");
    opts.reject_ga_budget_override("ablation_ga");
    let u = 0.5;
    let title = format!(
        "GA budget ablation at U={u} ({} systems/point): best-psi | best-upsilon | hypervolume",
        opts.systems
    );
    let sweep = Sweep::single("U", format!("{u}"), u);
    let base = opts.ga_config();
    // The default budget ladder; `--budgets POPxGENS[+seed],...`
    // substitutes any other list (the golden-master suite runs a tiny
    // one).
    let methods: Vec<Method<tagio_bench::EvalSystem>> = opts
        .budget_list(&[
            (20, 20, false),
            (50, 50, false),
            (100, 100, false),
            (150, 200, false),
            (50, 50, true), // ideal-seeding extension at the 50x50 budget
        ])
        .into_iter()
        .map(|(pop, gens, seeded)| {
            let cfg = GaConfig {
                population: pop,
                generations: gens,
                hint_fraction: if seeded { 0.2 } else { 0.0 },
                ..base.clone()
            };
            Method::ga(
                format!("{pop}x{gens}{}", if seeded { "+seed" } else { "" }),
                cfg,
            )
        })
        .collect();
    let report = Runner::new(title, opts.clone()).run(
        &sweep,
        |p| generate_systems(p.x, opts.systems, opts.seed),
        &methods,
    );
    report.emit(tagio_bench::Report::render_table);
}
