//! Ablation: GA budget sensitivity — how population size and generation
//! count move Ψ and Υ at a fixed utilisation.
//!
//! The paper runs 300×500; the laptop-scale defaults of the other binaries
//! run far less. This bench shows what the budget buys (and that the trend
//! conclusions hold at reduced scale).
//!
//! ```text
//! cargo run --release -p tagio-bench --bin ablation_ga -- --systems 10
//! ```

use tagio_bench::{generate_systems, mean, parallel_map, Options};
use tagio_ga::{hypervolume_2d, GaConfig, Objectives};
use tagio_sched::GaScheduler;

fn main() {
    let opts = Options::from_args();
    let u = 0.5;
    println!(
        "# GA budget ablation at U={u} ({} systems/point): best-psi | best-upsilon | hypervolume",
        opts.systems
    );
    println!(
        "{:<14} {:>10} {:>12} {:>13}",
        "pop x gens (s)", "psi", "upsilon", "hypervolume"
    );
    let systems = generate_systems(u, opts.systems, opts.seed);
    for (pop, gens, seeded) in [
        (20, 20, false),
        (50, 50, false),
        (100, 100, false),
        (150, 200, false),
        (50, 50, true), // ideal-seeding extension at the 50x50 budget
    ] {
        let cfg = GaConfig {
            population: pop,
            generations: gens,
            hint_fraction: if seeded { 0.2 } else { 0.0 },
            ..GaConfig::default()
        };
        let results = parallel_map(&systems, |sys| {
            GaScheduler::new()
                .with_config(cfg.clone())
                .with_seed(sys.seed)
                .search(&sys.jobs)
                .map(|r| {
                    let best_psi = r.front.iter().map(|t| t.0).fold(f64::MIN, f64::max);
                    let best_ups = r.front.iter().map(|t| t.1).fold(f64::MIN, f64::max);
                    let front: Vec<Objectives> = r
                        .front
                        .iter()
                        .map(|t| Objectives::from(vec![t.0, t.1]))
                        .collect();
                    (best_psi, best_ups, hypervolume_2d(&front, [0.0, 0.0]))
                })
        });
        let psis: Vec<f64> = results.iter().filter_map(|r| r.map(|x| x.0)).collect();
        let upss: Vec<f64> = results.iter().filter_map(|r| r.map(|x| x.1)).collect();
        let hvs: Vec<f64> = results.iter().filter_map(|r| r.map(|x| x.2)).collect();
        println!(
            "{:<14} {:>10.3} {:>12.3} {:>13.3}",
            format!("{pop}x{gens}{}", if seeded { "+seed" } else { "" }),
            mean(&psis),
            mean(&upss),
            mean(&hvs)
        );
    }
}
