//! Quantifies the paper's §I motivation: the latency of instigating an I/O
//! request from a remote CPU across an NoC varies with background
//! contention — so a CPU cannot hit exact I/O instants, while the
//! controller's global timer can.
//!
//! A probe request crosses a 4×4 mesh corner-to-corner under increasing
//! background injection rates (the sweep axis); the `latency` metric's
//! min/mean/max over repeated trials — and so its jitter — come straight
//! from the engine's summaries. `--systems` sets the trial count.
//!
//! Flags: `--systems N --seed N`, `--threads N` (worker pool, `0` = all
//! cores), `--json` (structured report on stdout; schema in
//! EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p tagio-bench --bin noc_latency -- --systems 50
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagio_bench::{Method, Options, Outcome, Runner, Sweep};
use tagio_noc::sim::{NocConfig, NocSim};
use tagio_noc::topology::{Mesh, NodeId};
use tagio_noc::traffic::UniformTraffic;

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("noc_latency");
    opts.reject_methods_override("noc_latency");
    opts.reject_ga_budget_override("noc_latency"); // no GA here; don't misrecord provenance
    let trials = opts.systems;
    let title = format!("NoC request-path latency, 4x4 mesh, {trials} trials/point");
    let sweep = Sweep::over("inj.rate", [0.0, 0.01, 0.02, 0.05, 0.10, 0.20]);
    let probe = Method::new("probe", |seed: &u64, point: &tagio_bench::SweepPoint| {
        let mut sim = NocSim::new(Mesh::new(4, 4), NocConfig::default());
        let mut rng = StdRng::seed_from_u64(*seed);
        UniformTraffic {
            injection_rate: point.x,
            flits: 4,
            priority: 1,
        }
        .schedule(&mut sim, 500, &mut rng);
        // The probe is the I/O request: same priority as the rest of the
        // application traffic (a remote CPU gets no special lane).
        let probe = sim.send(NodeId::new(0, 0), NodeId::new(3, 3), 4, 1, 100);
        sim.run_to_idle(1_000_000);
        let lat = sim
            .delivered()
            .iter()
            .find(|d| d.packet.id == probe)
            .expect("probe delivered")
            .latency();
        Outcome::with_metrics(vec![("latency", lat as f64)])
    });
    let report = Runner::new(title, opts.clone()).run(
        &sweep,
        |_| (0..trials).map(|t| opts.seed + t as u64).collect(),
        &[probe],
    );
    report.emit(|r| {
        let mut text = r.render_table();
        text.push_str(
            "# jitter (max - min) > 0 at any load: a remote CPU cannot guarantee exact I/O instants.\n",
        );
        text
    });
}
