//! Quantifies the paper's §I motivation: the latency of instigating an I/O
//! request from a remote CPU across an NoC varies with background
//! contention — so a CPU cannot hit exact I/O instants, while the
//! controller's global timer can.
//!
//! A probe request crosses a 4×4 mesh corner-to-corner under increasing
//! background injection rates; we report min / mean / max probe latency
//! over repeated trials.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin noc_latency -- --systems 50
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagio_bench::{mean, Options};
use tagio_noc::sim::{NocConfig, NocSim};
use tagio_noc::topology::{Mesh, NodeId};
use tagio_noc::traffic::UniformTraffic;

fn main() {
    let opts = Options::from_args();
    let trials = opts.systems.max(10);
    println!("# NoC request-path latency, 4x4 mesh, {trials} trials/point");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>9}",
        "inj.rate", "min", "mean", "max", "jitter"
    );
    for rate in [0.0, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let mut latencies = Vec::with_capacity(trials);
        for trial in 0..trials {
            let mut sim = NocSim::new(Mesh::new(4, 4), NocConfig::default());
            let mut rng = StdRng::seed_from_u64(opts.seed + trial as u64);
            UniformTraffic {
                injection_rate: rate,
                flits: 4,
                priority: 1,
            }
            .schedule(&mut sim, 500, &mut rng);
            // The probe is the I/O request: same priority as the rest of
            // the application traffic (a remote CPU gets no special lane).
            let probe = sim.send(NodeId::new(0, 0), NodeId::new(3, 3), 4, 1, 100);
            sim.run_to_idle(1_000_000);
            let lat = sim
                .delivered()
                .iter()
                .find(|d| d.packet.id == probe)
                .expect("probe delivered")
                .latency();
            latencies.push(lat as f64);
        }
        let min = latencies.iter().copied().fold(f64::MAX, f64::min);
        let max = latencies.iter().copied().fold(f64::MIN, f64::max);
        println!(
            "{:<10.2} {:>8.0} {:>8.1} {:>8.0} {:>9.0}",
            rate,
            min,
            mean(&latencies),
            max,
            max - min
        );
    }
    println!("# jitter > 0 at any load: a remote CPU cannot guarantee exact I/O instants.");
}
