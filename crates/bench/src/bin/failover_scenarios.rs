//! Partition failover under recurring deaths: **how much of a dead
//! partition's work the fleet wins back**, by placement policy.
//!
//! Each system is a seeded [`FleetScenario`] whose event stream kills a
//! random partition after every `death_every`-th arrival
//! ([`FleetScenarioConfig::death_every`]): the victim restarts empty and
//! the [`FleetScheduler`](tagio_online::fleet::FleetScheduler) mass
//! re-admits its tasks onto the survivors through the retry machinery,
//! diagnosing the rest. The sweep axis combines partition count and
//! death cadence (`PxDN` labels — `4xD3` = 4 partitions, a death every
//! 3 arrivals), so the table reads as fleet width × death rate ×
//! placement policy: more survivors and slower death rates should both
//! raise the rehomed share.
//!
//! Reported per method (all deterministic — no wall-clock columns, so
//! the JSON is golden-mastered byte-exactly):
//!
//! * `acceptance` — fleet-unique admitted / routed arrivals (deaths
//!   erase admitted work but do not touch admission accounting);
//! * `deaths` — partition deaths routed;
//! * `orphaned` — tasks stranded by those deaths;
//! * `rehomed` — orphans re-admitted onto a surviving partition;
//! * `lost` — orphans no survivor could take (each carries the dead
//!   partition's id in its `Infeasible` diagnostics);
//! * `psi` / `upsilon` — mean live-schedule quality over busy
//!   partitions after the stream.
//!
//! Replays batch 4 events per epoch and run each fleet single-threaded
//! inside the method (the experiment engine already parallelises across
//! systems); results are identical for any thread split.
//!
//! Flags: `--systems N` (scenarios per point), `--seed N`, `--threads N`
//! (worker pool, `0` = all cores), `--json`. JSON schema: EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p tagio-bench --bin failover_scenarios -- --systems 5
//! ```

use tagio_bench::{Method, Options, Outcome, Runner, Sweep};
use tagio_online::fleet::{FleetConfig, PlacementPolicy};
use tagio_online::scenario::{FleetReplayOutcome, FleetScenario, FleetScenarioConfig};

/// Events per routing epoch during replay.
const BATCH: usize = 4;

/// The failover sweep: (partitions, death_every) pairs, labelled
/// `PxDN`. Cadences divide into the arrival count so every point sees
/// several deaths.
const SWEEP: [(u32, usize); 5] = [(2, 8), (2, 4), (4, 8), (4, 4), (4, 2)];

/// Arrivals per scenario (fixed: the sweep varies deaths, not load).
const ARRIVALS: usize = 24;

fn metrics(out: &FleetReplayOutcome) -> Outcome {
    // Deterministic columns only: latency metrics are wall-clock and
    // would unpin the golden master.
    Outcome::with_metrics([
        ("acceptance", out.acceptance),
        ("deaths", out.deaths as f64),
        ("orphaned", out.orphaned as f64),
        ("rehomed", out.rehomed as f64),
        ("lost", out.lost as f64),
        ("psi", out.mean_psi),
        ("upsilon", out.mean_upsilon),
    ])
}

fn policy_method(policy: PlacementPolicy) -> Method<FleetScenario> {
    Method::new(policy.as_str(), move |scenario: &FleetScenario, _| {
        metrics(&scenario.replay(
            FleetConfig {
                policy,
                threads: 1, // the engine parallelises across systems
                ..FleetConfig::default()
            },
            BATCH,
        ))
    })
}

fn main() {
    let opts = Options::from_args();
    opts.reject_budgets_override("failover_scenarios");
    opts.reject_methods_override("failover_scenarios");
    opts.reject_ga_budget_override("failover_scenarios"); // no GA here
    let title = format!(
        "failover scenarios — partition deaths vs placement policy ({} scenarios/point)",
        opts.systems
    );
    let sweep = Sweep::labelled(
        "failover",
        SWEEP.map(|(partitions, death_every)| {
            (
                format!("{partitions}xD{death_every}"),
                f64::from(partitions) * 1000.0 + death_every as f64,
            )
        }),
    );
    let methods = vec![
        policy_method(PlacementPolicy::FirstFit),
        policy_method(PlacementPolicy::BestFit),
        policy_method(PlacementPolicy::Rebalance),
    ];
    let seed = opts.seed;
    let systems = opts.systems;
    let report = Runner::new(title, opts.clone()).run(
        &sweep,
        |point| {
            // Decode the combined axis (partitions * 1000 + cadence).
            let partitions = (point.x / 1000.0) as u32;
            let death_every = (point.x as usize) % 1000;
            (0..systems)
                .map(|i| {
                    FleetScenario::generate(&FleetScenarioConfig {
                        partitions,
                        arrivals: ARRIVALS,
                        death_every,
                        seed: seed
                            .wrapping_mul(1_000_003)
                            .wrapping_add(death_every as u64 * 7919)
                            .wrapping_add(u64::from(partitions) * 104_729)
                            .wrapping_add(i as u64),
                        ..FleetScenarioConfig::default()
                    })
                })
                .collect::<Vec<_>>()
        },
        &methods,
    );
    report.emit(tagio_bench::Report::render_table);
}
