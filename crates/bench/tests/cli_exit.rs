//! Every flag-misuse path of every experiment binary must exit
//! **non-zero** (code 2, the conventional usage-error status) with a
//! diagnostic on stderr and nothing on stdout — a misuse that exits 0
//! poisons shell pipelines and CI scripts that trust `$?`.

use std::process::{Command, Output};

/// The compiled experiment binaries, via the `CARGO_BIN_EXE_<name>`
/// variables cargo sets for integration tests of the defining crate.
fn binaries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "fig5_schedulability",
            env!("CARGO_BIN_EXE_fig5_schedulability"),
        ),
        ("fig6_psi", env!("CARGO_BIN_EXE_fig6_psi")),
        ("fig7_upsilon", env!("CARGO_BIN_EXE_fig7_upsilon")),
        ("table1_hwcost", env!("CARGO_BIN_EXE_table1_hwcost")),
        ("noc_latency", env!("CARGO_BIN_EXE_noc_latency")),
        ("ablation_lccd", env!("CARGO_BIN_EXE_ablation_lccd")),
        ("ablation_ga", env!("CARGO_BIN_EXE_ablation_ga")),
        (
            "ablation_baselines",
            env!("CARGO_BIN_EXE_ablation_baselines"),
        ),
        ("online_scenarios", env!("CARGO_BIN_EXE_online_scenarios")),
        ("fleet_scenarios", env!("CARGO_BIN_EXE_fleet_scenarios")),
        (
            "failover_scenarios",
            env!("CARGO_BIN_EXE_failover_scenarios"),
        ),
        ("tenant_scenarios", env!("CARGO_BIN_EXE_tenant_scenarios")),
        ("throughput", env!("CARGO_BIN_EXE_throughput")),
    ]
}

fn run(path: &str, args: &[&str]) -> Output {
    Command::new(path)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {path}: {e}"))
}

fn assert_usage_error(name: &str, out: &Output, what: &str) {
    assert_eq!(
        out.status.code(),
        Some(2),
        "{name} ({what}): expected exit code 2, got {:?}",
        out.status.code()
    );
    assert!(
        !out.stderr.is_empty(),
        "{name} ({what}): no diagnostic on stderr"
    );
    assert!(
        out.stdout.is_empty(),
        "{name} ({what}): flag misuse must not produce report output"
    );
}

#[test]
fn unknown_flags_exit_nonzero_everywhere() {
    for (name, path) in binaries() {
        assert_usage_error(name, &run(path, &["--frobnicate"]), "unknown flag");
    }
}

#[test]
fn missing_flag_values_exit_nonzero_everywhere() {
    for (name, path) in binaries() {
        assert_usage_error(name, &run(path, &["--systems"]), "missing value");
        assert_usage_error(name, &run(path, &["--seed", "plenty"]), "non-integer value");
    }
}

#[test]
fn fixed_method_binaries_reject_methods_override() {
    for name in [
        "fig5_schedulability",
        "fig6_psi",
        "fig7_upsilon",
        "table1_hwcost",
        "noc_latency",
        "ablation_ga",
        "online_scenarios",
        "fleet_scenarios",
        "failover_scenarios",
        "tenant_scenarios",
        "throughput",
    ] {
        let path = binaries()
            .into_iter()
            .find(|(n, _)| *n == name)
            .expect("binary listed")
            .1;
        let out = run(path, &["--methods", "static"]);
        assert_usage_error(name, &out, "--methods on a fixed-list binary");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--methods") && stderr.contains(name),
            "{name}: diagnostic should name the flag and the binary: {stderr}"
        );
    }
}

#[test]
fn methods_accepting_binaries_reject_unknown_names() {
    for name in ["ablation_baselines", "ablation_lccd"] {
        let path = binaries()
            .into_iter()
            .find(|(n, _)| *n == name)
            .expect("binary listed")
            .1;
        let out = run(path, &["--methods", "made-up-method"]);
        assert_usage_error(name, &out, "unknown method name");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("made-up-method"),
            "{name}: diagnostic should echo the bad name"
        );
    }
}

#[test]
fn budgets_flag_is_ablation_ga_only_and_validated() {
    for (name, path) in binaries() {
        if name == "ablation_ga" {
            // Accepted, but malformed entries are usage errors.
            let out = run(path, &["--budgets", "notabudget"]);
            assert_usage_error(name, &out, "malformed --budgets entry");
            assert!(String::from_utf8_lossy(&out.stderr).contains("notabudget"));
        } else {
            assert_usage_error(
                name,
                &run(path, &["--budgets", "8x8"]),
                "--budgets on a non-budget binary",
            );
        }
    }
}

#[test]
fn fixed_budget_binaries_reject_ga_overrides() {
    for name in [
        "table1_hwcost",
        "noc_latency",
        "ablation_ga",
        "online_scenarios",
        "fleet_scenarios",
        "failover_scenarios",
        "tenant_scenarios",
        "throughput",
    ] {
        let path = binaries()
            .into_iter()
            .find(|(n, _)| *n == name)
            .expect("binary listed")
            .1;
        assert_usage_error(name, &run(path, &["--pop", "10"]), "--pop override");
        assert_usage_error(name, &run(path, &["--gens", "10"]), "--gens override");
    }
}
