//! Golden-master regression suite for every experiment binary.
//!
//! Each binary runs a tiny fixed-seed sweep with `--json --threads 2`
//! and the parsed document is compared **structurally** (via
//! `tagio_bench::json::diff`: key sets, array shapes, strings, numbers
//! within tolerance — but not byte formatting or member order) against
//! the snapshot under `tests/golden/` at the repository root. Report-
//! format churn therefore fails this suite until the snapshots are
//! regenerated deliberately:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p tagio-bench --test golden_master
//! ```
//!
//! Wall-clock metrics (`repair_latency_us` in `online_scenarios`) are
//! the one non-deterministic output; their summaries are normalised to
//! zero on both sides before the comparison (their *presence* is still
//! pinned).

use std::path::PathBuf;
use std::process::Command;
use tagio_bench::json::{self, Value};

/// `(name, path, extra args)` for every experiment binary. All runs add
/// `--json --threads 2` (a fixed thread count keeps the provenance block
/// machine-independent; results are thread-count-invariant anyway).
///
/// `throughput` is deliberately absent: its headline columns
/// (`events_per_sec`, `p50_us`, `p99_us`) are wall-clock and its full
/// sweep is minutes-slow unoptimised. Its envelope shape is pinned by
/// the binary's own unit tests, and CI diffs the committed
/// `BENCH_throughput.json` schema version against a release-mode smoke
/// run instead.
fn cases() -> Vec<(&'static str, &'static str, Vec<&'static str>)> {
    vec![
        (
            "fig5_schedulability",
            env!("CARGO_BIN_EXE_fig5_schedulability"),
            vec!["--systems", "2", "--pop", "12", "--gens", "4"],
        ),
        (
            "fig6_psi",
            env!("CARGO_BIN_EXE_fig6_psi"),
            vec!["--systems", "2", "--pop", "12", "--gens", "4"],
        ),
        (
            "fig7_upsilon",
            env!("CARGO_BIN_EXE_fig7_upsilon"),
            vec!["--systems", "2", "--pop", "12", "--gens", "4"],
        ),
        ("table1_hwcost", env!("CARGO_BIN_EXE_table1_hwcost"), vec![]),
        (
            "noc_latency",
            env!("CARGO_BIN_EXE_noc_latency"),
            vec!["--systems", "3"],
        ),
        (
            "ablation_lccd",
            env!("CARGO_BIN_EXE_ablation_lccd"),
            vec!["--systems", "2"],
        ),
        (
            "ablation_ga",
            env!("CARGO_BIN_EXE_ablation_ga"),
            vec!["--systems", "1", "--budgets", "6x6,8x8+seed"],
        ),
        (
            "ablation_baselines",
            env!("CARGO_BIN_EXE_ablation_baselines"),
            vec!["--systems", "2"],
        ),
        (
            "online_scenarios",
            env!("CARGO_BIN_EXE_online_scenarios"),
            vec!["--systems", "2"],
        ),
        (
            "fleet_scenarios",
            env!("CARGO_BIN_EXE_fleet_scenarios"),
            vec!["--systems", "2"],
        ),
        (
            "failover_scenarios",
            env!("CARGO_BIN_EXE_failover_scenarios"),
            vec!["--systems", "2"],
        ),
        (
            "tenant_scenarios",
            env!("CARGO_BIN_EXE_tenant_scenarios"),
            vec!["--systems", "2"],
        ),
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Zeroes the summaries of wall-clock metrics so run-to-run timing noise
/// cannot trip the diff. The metric's presence and sample count remain
/// pinned.
fn normalise(value: &mut Value) {
    if let Value::Object(members) = value {
        for (key, member) in members.iter_mut() {
            if key == "repair_latency_us" {
                if let Value::Object(summary) = member {
                    for (stat, v) in summary.iter_mut() {
                        if stat != "count" {
                            *v = Value::Number(0.0);
                        }
                    }
                }
            } else {
                normalise(member);
            }
        }
    } else if let Value::Array(items) = value {
        for item in items {
            normalise(item);
        }
    }
}

#[test]
fn experiment_binaries_match_their_golden_documents() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for (name, path, extra) in cases() {
        let out = Command::new(path)
            .args(&extra)
            .args(["--json", "--threads", "2"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert!(
            out.status.success(),
            "{name} exited with {:?}: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("reports are UTF-8");
        let mut actual = json::parse(stdout.trim())
            .unwrap_or_else(|e| panic!("{name} emitted invalid JSON: {e}"));
        normalise(&mut actual);
        let golden_path = dir.join(format!("{name}.json"));
        if update {
            // Write the *normalised* document: wall-clock summaries are
            // already zeroed, so regeneration is byte-stable whenever the
            // schema and deterministic values are unchanged.
            std::fs::write(&golden_path, json::render(&actual) + "\n")
                .unwrap_or_else(|e| panic!("write {}: {e}", golden_path.display()));
            eprintln!("updated {}", golden_path.display());
            continue;
        }
        let golden_text = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                golden_path.display()
            )
        });
        let mut golden = json::parse(golden_text.trim())
            .unwrap_or_else(|e| panic!("corrupt golden {}: {e}", golden_path.display()));
        normalise(&mut golden);
        let differences = json::diff(&golden, &actual, 1e-9);
        if !differences.is_empty() {
            failures.push(format!(
                "{name}: {} difference(s) vs {}:\n  {}",
                differences.len(),
                golden_path.display(),
                differences
                    .iter()
                    .take(12)
                    .cloned()
                    .collect::<Vec<_>>()
                    .join("\n  ")
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden-master mismatches (regenerate deliberately with UPDATE_GOLDEN=1):\n{}",
        failures.join("\n")
    );
}

#[test]
fn golden_documents_cover_every_binary() {
    // The snapshot set must not silently drift from the binary list.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return;
    }
    let dir = golden_dir();
    for (name, _, _) in cases() {
        assert!(
            dir.join(format!("{name}.json")).exists(),
            "no golden snapshot for {name} under {}",
            dir.display()
        );
    }
}
