//! Deterministic artifact generation (`audit gen`).
//!
//! Runs a short, fixed recovery scenario — tenanted arrivals across
//! three partitions, a utilisation spike, a departure and a partition
//! death — and emits the resulting snapshot, WAL and event trace. The
//! same generator feeds the committed goldens under
//! `tests/golden/audit/`, the mutation suites, and the CI gate that
//! audits freshly produced artifacts.

use std::collections::BTreeMap;
use tagio_core::event::{SystemEvent, TimedEvent};
use tagio_core::task::{DeviceId, IoTask, TaskId, TaskSet};
use tagio_core::time::{Duration, Time};
use tagio_online::scenario::format_trace;
use tagio_online::wal::{format_record, parse_wal};
use tagio_online::{
    FleetConfig, FleetScheduler, FleetSnapshot, TenantId, TenantRegistry, TenantSpec, WalContents,
};

/// Everything one generator run produces, in both parsed and text
/// form (the text forms are exactly what `audit gen` writes to disk).
#[derive(Debug, Clone)]
pub struct GeneratedArtifacts {
    /// Mid-run checkpoint (after epoch 2 of 4): the WAL suffix replays
    /// a spike, a departure and a partition death on top of it.
    pub snapshot: FleetSnapshot,
    /// `snapshot.write()`.
    pub snapshot_text: String,
    /// All four epochs, in order.
    pub wal: WalContents,
    /// The WAL byte stream (concatenated `format_record`s).
    pub wal_text: String,
    /// The same events as a timed trace (1 ms per epoch).
    pub trace_text: String,
    /// Parsed trace events.
    pub events: Vec<TimedEvent>,
}

fn task(id: u32, device: u32, delta_ms: u64, tenant: u32) -> IoTask {
    let mut b = IoTask::builder(TaskId(id), DeviceId(device))
        .wcet(Duration::from_micros(400))
        .period(Duration::from_millis(8))
        .ideal_offset(Duration::from_millis(delta_ms))
        .margin(Duration::from_millis(1))
        .quality(f64::from(id) + 1.0, 0.0);
    if tenant != 0 {
        b = b.tenant(TenantId(tenant));
    }
    b.build()
        .expect("generator tasks are valid by construction")
}

/// The four scripted epochs.
#[must_use]
pub fn batches() -> Vec<Vec<SystemEvent>> {
    vec![
        vec![
            SystemEvent::Arrival(task(10, 0, 2, 1)),
            SystemEvent::Arrival(task(11, 1, 3, 2)),
            SystemEvent::Arrival(task(12, 2, 4, 2)),
            SystemEvent::Arrival(task(13, 0, 5, 0)),
        ],
        vec![
            SystemEvent::Arrival(task(14, 1, 6, 1)),
            SystemEvent::Departure(TaskId(13)),
        ],
        vec![
            SystemEvent::UtilisationSpike {
                device: DeviceId(0),
                percent: 130,
            },
            SystemEvent::Arrival(task(15, 2, 2, 2)),
        ],
        vec![
            SystemEvent::PartitionDeath {
                device: DeviceId(2),
            },
            SystemEvent::Arrival(task(16, 0, 3, 2)),
        ],
    ]
}

/// Builds the scripted fleet at epoch 0.
#[must_use]
pub fn fleet() -> FleetScheduler {
    let mut registry = TenantRegistry::new();
    registry.register(TenantId(1), TenantSpec::guaranteed(500_000));
    registry.register(TenantId(2), TenantSpec::best_effort(200_000).with_weight(2));
    let mut bases = BTreeMap::new();
    for device in 0..3u32 {
        let base: TaskSet = vec![task(device, device, 2 + u64::from(device), 0)]
            .into_iter()
            .collect();
        bases.insert(DeviceId(device), base);
    }
    FleetScheduler::bootstrap(
        &bases,
        FleetConfig {
            threads: 1,
            tenants: registry,
            ..FleetConfig::default()
        },
    )
}

/// Runs the scenario and captures every artifact.
///
/// # Panics
/// Panics only if the generator's own fixed scenario stops producing
/// a parseable WAL — a regression the test suite would catch.
#[must_use]
pub fn generate() -> GeneratedArtifacts {
    let mut live = fleet();
    let mut wal_text = String::new();
    let mut snapshot = None;
    let mut events = Vec::new();
    for (i, batch) in batches().iter().enumerate() {
        for event in batch {
            events.push(TimedEvent {
                at: Time::from_millis((i + 1) as u64),
                event: event.clone(),
            });
        }
        let _ = live.apply_batch(batch);
        wal_text.push_str(&format_record(&live.epoch_record(batch)));
        if i == 1 {
            snapshot = Some(live.snapshot());
        }
    }
    let snapshot = snapshot.expect("scenario has more than two epochs");
    let snapshot_text = snapshot.write();
    let wal = parse_wal(&wal_text).expect("generator WAL parses");
    let trace_text = format_trace(&events);
    GeneratedArtifacts {
        snapshot,
        snapshot_text,
        wal,
        wal_text,
        trace_text,
        events,
    }
}
