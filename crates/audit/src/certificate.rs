//! Live commit-point certification.
//!
//! A [`ScheduleCertificate`] re-derives every fleet invariant from a
//! *running* [`FleetScheduler`]'s public observation surface — the
//! per-partition schedules and job sets, cached Ψ/Υ, ownership, and
//! the full counter hierarchy. With the `debug-audit` feature enabled
//! (here and in `tagio-online`), `install_commit_certification`
//! hooks certification into the end of every `apply_batch`, so each
//! committed epoch is certified the moment it exists.

use crate::report::{AuditReport, ViolationClass};
use crate::schedule::{verify_entries, verify_quality};
use crate::snapshot::{verify_fleet_stats, verify_online_stats};
use std::collections::BTreeMap;
use tagio_core::task::TaskId;
use tagio_online::FleetScheduler;

/// The outcome of certifying one committed epoch.
#[derive(Debug, Clone)]
pub struct ScheduleCertificate {
    /// The epoch the certificate covers.
    pub epoch: usize,
    /// Everything that failed (empty = certified).
    pub report: AuditReport,
}

impl ScheduleCertificate {
    /// Certifies the fleet's current (post-commit) state.
    #[must_use]
    pub fn certify(fleet: &FleetScheduler) -> ScheduleCertificate {
        ScheduleCertificate {
            epoch: fleet.stats().epochs,
            report: certify_fleet(fleet),
        }
    }

    /// `true` when every invariant held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }
}

/// Re-derives every invariant of a live fleet.
#[must_use]
pub fn certify_fleet(fleet: &FleetScheduler) -> AuditReport {
    let mut report = AuditReport::new();
    let mut active = 0usize;
    let mut seen: BTreeMap<TaskId, usize> = BTreeMap::new();
    for p in fleet.partitions() {
        let device = p.device();
        let sub = verify_entries(p.schedule().as_slice(), p.jobs());
        for v in sub.violations {
            report.push(v.class, format!("{device} {}", v.subject), v.detail);
        }
        let sub = verify_quality(p.schedule(), p.jobs(), p.psi(), p.upsilon());
        for v in sub.violations {
            report.push(v.class, format!("{device} {}", v.subject), v.detail);
        }
        verify_online_stats(&device.to_string(), p.stats(), &mut report);
        for t in p.tasks() {
            active += 1;
            *seen.entry(t.id()).or_insert(0) += 1;
            match fleet.owner_of(t.id()) {
                Some(owned) if owned == device => {}
                Some(owned) => report.push(
                    ViolationClass::OwnershipViolation,
                    format!("{}", t.id()),
                    format!("active on {device} but owned by {owned}"),
                ),
                None => report.push(
                    ViolationClass::OwnershipViolation,
                    format!("{}", t.id()),
                    format!("active on {device} but unowned"),
                ),
            }
        }
    }
    for (task, holders) in &seen {
        if *holders > 1 {
            report.push(
                ViolationClass::OwnershipViolation,
                format!("{task}"),
                format!("active on {holders} partitions"),
            );
        }
    }
    if active != fleet.active_tasks() {
        report.push(
            ViolationClass::OwnershipViolation,
            "fleet owner map",
            format!(
                "{} owner entries vs {active} active tasks across partitions",
                fleet.active_tasks()
            ),
        );
    }
    verify_fleet_stats(fleet.stats(), &mut report);
    report
}

/// Installs commit-point certification: after every committed epoch
/// the fleet is certified and any violation panics with the full
/// report (a certificate failure *is* a determinism bug — tests must
/// fail loudly). Returns `false` when a hook was already installed.
///
/// The count of certified epochs is observable via
/// [`certified_epochs`], so suites can assert the hook actually ran.
#[cfg(feature = "debug-audit")]
pub fn install_commit_certification() -> bool {
    tagio_online::commit_audit::install(Box::new(|fleet| {
        let cert = ScheduleCertificate::certify(fleet);
        CERTIFIED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        assert!(
            cert.is_clean(),
            "commit-point certificate violated at epoch {}:\n{}",
            cert.epoch,
            cert.report
        );
    }))
}

#[cfg(feature = "debug-audit")]
static CERTIFIED: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// How many epochs the installed hook has certified in this process.
#[cfg(feature = "debug-audit")]
#[must_use]
pub fn certified_epochs() -> usize {
    CERTIFIED.load(std::sync::atomic::Ordering::Relaxed)
}
