//! Structured audit findings.
//!
//! Every verifier in this crate reports [`AuditViolation`]s, not
//! booleans: a violation names the invariant class that failed, the
//! artifact element it failed on, and what the verifier saw — enough
//! for a human (or the mutation harness) to pinpoint the defect
//! without re-running anything.

use std::fmt;

/// The invariant class a violation belongs to. One variant per
/// independently checkable property; the mutation harness asserts at
/// least one detected mutation per class it can reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ViolationClass {
    /// Two schedule entries occupy the same device at the same time.
    Overlap,
    /// An entry starts before its job's release.
    ReleaseWindow,
    /// An entry finishes after its job's absolute deadline.
    DeadlineMiss,
    /// An entry's duration differs from its job's WCET.
    WrongDuration,
    /// A job is scheduled more than once.
    DuplicateJob,
    /// A job of the active set has no schedule entry.
    MissingJob,
    /// A schedule entry names a job outside the active set.
    UnknownJob,
    /// A cached Ψ or Υ value differs bit-for-bit from the
    /// independently recomputed one.
    QualityMismatch,
    /// A task is owned by zero or several partitions, or ownership
    /// disagrees with the active sets.
    OwnershipViolation,
    /// A counter identity fails (e.g. arrivals ≠ admitted + rejected,
    /// or per-tenant counters exceed the fleet totals they partition).
    CounterConservation,
    /// Snapshot partitions are not in strictly increasing device order.
    PartitionOrder,
    /// A snapshot does not survive parse → write byte-identically.
    SnapshotNotFixedPoint,
    /// A snapshot fails to parse at all.
    SnapshotMalformed,
    /// A WAL fails to parse (interior corruption, not a torn tail).
    WalMalformed,
    /// WAL epochs are not consecutive.
    EpochGap,
    /// WAL records carry more than one RNG seed, or a seed differing
    /// from the snapshot's.
    SeedMismatch,
    /// A replayed epoch's re-derived digests differ from the WAL's
    /// commit line.
    DigestMismatch,
    /// The WAL ends mid-record (crash during append).
    TornTail,
    /// A trace fails to parse.
    TraceMalformed,
    /// Trace timestamps go backwards.
    TimestampOrder,
    /// A trace re-arrives a task that never departed.
    DuplicateArrival,
    /// A source-lint rule fired (see `audit lint`).
    Lint,
}

impl ViolationClass {
    /// Stable kebab-case identifier (used in CLI diagnostics).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationClass::Overlap => "overlap",
            ViolationClass::ReleaseWindow => "release-window",
            ViolationClass::DeadlineMiss => "deadline-miss",
            ViolationClass::WrongDuration => "wrong-duration",
            ViolationClass::DuplicateJob => "duplicate-job",
            ViolationClass::MissingJob => "missing-job",
            ViolationClass::UnknownJob => "unknown-job",
            ViolationClass::QualityMismatch => "quality-mismatch",
            ViolationClass::OwnershipViolation => "ownership-violation",
            ViolationClass::CounterConservation => "counter-conservation",
            ViolationClass::PartitionOrder => "partition-order",
            ViolationClass::SnapshotNotFixedPoint => "snapshot-not-fixed-point",
            ViolationClass::SnapshotMalformed => "snapshot-malformed",
            ViolationClass::WalMalformed => "wal-malformed",
            ViolationClass::EpochGap => "epoch-gap",
            ViolationClass::SeedMismatch => "seed-mismatch",
            ViolationClass::DigestMismatch => "digest-mismatch",
            ViolationClass::TornTail => "torn-tail",
            ViolationClass::TraceMalformed => "trace-malformed",
            ViolationClass::TimestampOrder => "timestamp-order",
            ViolationClass::DuplicateArrival => "duplicate-arrival",
            ViolationClass::Lint => "lint",
        }
    }
}

impl fmt::Display for ViolationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One invariant failure, located and explained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which invariant failed.
    pub class: ViolationClass,
    /// The artifact element it failed on (a device, a job id, a line,
    /// an epoch…).
    pub subject: String,
    /// What the verifier saw, with expected vs. actual where useful.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.class, self.subject, self.detail)
    }
}

/// The outcome of one verification pass: every violation found, in
/// discovery order — verifiers never stop at the first defect.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Everything that failed; empty means the artifact is certified.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// An empty (clean) report.
    #[must_use]
    pub fn new() -> AuditReport {
        AuditReport::default()
    }

    /// `true` when no invariant failed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Records one violation.
    pub fn push(
        &mut self,
        class: ViolationClass,
        subject: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.violations.push(AuditViolation {
            class,
            subject: subject.into(),
            detail: detail.into(),
        });
    }

    /// Folds another report's violations into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.violations.extend(other.violations);
    }

    /// The distinct classes present, sorted — what the mutation
    /// harness matches against.
    #[must_use]
    pub fn classes(&self) -> Vec<ViolationClass> {
        let mut classes: Vec<_> = self.violations.iter().map(|v| v.class).collect();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// `true` when at least one violation of `class` was found.
    #[must_use]
    pub fn has(&self, class: ViolationClass) -> bool {
        self.violations.iter().any(|v| v.class == class)
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "clean");
        }
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_collects_and_classifies() {
        let mut r = AuditReport::new();
        assert!(r.is_clean());
        r.push(ViolationClass::Overlap, "d0", "jobs t1#0 and t2#0 collide");
        r.push(ViolationClass::Overlap, "d0", "jobs t2#0 and t3#0 collide");
        r.push(ViolationClass::EpochGap, "epoch 3", "expected 2");
        assert!(!r.is_clean());
        assert_eq!(
            r.classes(),
            vec![ViolationClass::Overlap, ViolationClass::EpochGap]
        );
        assert!(r.has(ViolationClass::EpochGap));
        assert!(!r.has(ViolationClass::TornTail));
        let shown = r.to_string();
        assert!(shown.contains("[overlap] d0:"), "{shown}");
    }
}
