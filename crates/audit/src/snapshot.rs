//! Independent fleet-snapshot verification.
//!
//! Re-derives the fleet's structural invariants from a
//! [`FleetSnapshot`]'s public fields alone: partition ordering,
//! per-partition schedule feasibility against the *re-expanded* job
//! set, fleet-wide single ownership, and counter conservation at every
//! level (fleet, tenant, partition). The text form is additionally
//! required to be a parse → write byte fixed point.

use crate::report::{AuditReport, ViolationClass};
use crate::schedule::verify_entries;
use std::collections::BTreeMap;
use tagio_core::job::JobSet;
use tagio_core::task::{TaskId, TaskSet};
use tagio_online::tenant::TenantCounters;
use tagio_online::{FleetSnapshot, FleetStats, OnlineStats, PartitionSnapshot, TenantId};

/// Verifies snapshot *text*: it must parse, be a byte fixed point, and
/// satisfy every structural invariant. Returns the parsed snapshot
/// (when parsing succeeded) alongside the report.
#[must_use]
pub fn verify_snapshot_text(text: &str) -> (Option<FleetSnapshot>, AuditReport) {
    let mut report = AuditReport::new();
    let snap = match FleetSnapshot::parse(text) {
        Ok(snap) => snap,
        Err(e) => {
            report.push(
                ViolationClass::SnapshotMalformed,
                format!("line {}", e.line),
                e.message,
            );
            return (None, report);
        }
    };
    let rewritten = snap.write();
    if rewritten != text {
        let at = text
            .lines()
            .zip(rewritten.lines())
            .take_while(|(a, b)| a == b)
            .count();
        report.push(
            ViolationClass::SnapshotNotFixedPoint,
            format!("line {}", at + 1),
            "parse -> write is not byte-identical to the input",
        );
    }
    report.merge(verify_snapshot(&snap));
    (Some(snap), report)
}

/// Verifies an in-memory snapshot's structural invariants.
#[must_use]
pub fn verify_snapshot(snap: &FleetSnapshot) -> AuditReport {
    let mut report = AuditReport::new();
    if snap.epoch != snap.stats.epochs {
        report.push(
            ViolationClass::CounterConservation,
            "fleet epoch",
            format!(
                "snapshot closes epoch {} but stats count {}",
                snap.epoch, snap.stats.epochs
            ),
        );
    }
    // Partition order: strictly increasing device ids (the commit order
    // every deterministic phase relies on).
    for pair in snap.partitions.windows(2) {
        if pair[0].device >= pair[1].device {
            report.push(
                ViolationClass::PartitionOrder,
                format!("{}", pair[1].device),
                format!("follows {} out of device order", pair[0].device),
            );
        }
    }
    // Per-partition: schedule feasibility against the re-expanded job
    // set, and the partition's own counter identities.
    let mut owner_seen: BTreeMap<TaskId, Vec<usize>> = BTreeMap::new();
    for (idx, p) in snap.partitions.iter().enumerate() {
        verify_partition(p, &mut report);
        for t in &p.active {
            owner_seen.entry(t.id()).or_default().push(idx);
        }
    }
    // Fleet-wide single ownership: the owner map and the union of the
    // active sets must agree exactly.
    for (&task, holders) in &owner_seen {
        if holders.len() > 1 {
            let devices: Vec<String> = holders
                .iter()
                .map(|&i| snap.partitions[i].device.to_string())
                .collect();
            report.push(
                ViolationClass::OwnershipViolation,
                format!("t{}", task.0),
                format!(
                    "active on {} partitions: {}",
                    holders.len(),
                    devices.join(", ")
                ),
            );
        }
        let device = snap.partitions[holders[0]].device;
        match snap.owner.get(&task) {
            Some(&owned) if owned == device => {}
            Some(&owned) => report.push(
                ViolationClass::OwnershipViolation,
                format!("t{}", task.0),
                format!("active on {device} but owned by {owned}"),
            ),
            None => report.push(
                ViolationClass::OwnershipViolation,
                format!("t{}", task.0),
                format!("active on {device} but absent from the owner map"),
            ),
        }
    }
    for &task in snap.owner.keys() {
        if !owner_seen.contains_key(&task) {
            report.push(
                ViolationClass::OwnershipViolation,
                format!("t{}", task.0),
                "owned but active on no partition",
            );
        }
    }
    // Fleet counter conservation.
    verify_fleet_stats(&snap.stats, &mut report);
    report
}

fn verify_partition(p: &PartitionSnapshot, report: &mut AuditReport) {
    let device = p.device;
    let mut set = TaskSet::new();
    let mut expandable = true;
    for t in &p.active {
        if set.push(t.clone()).is_err() {
            report.push(
                ViolationClass::OwnershipViolation,
                format!("{device} {}", t.id()),
                "duplicated in the partition's active set",
            );
            expandable = false;
        }
    }
    if expandable {
        let jobs = JobSet::expand(&set);
        let sub = verify_entries(&p.entries, &jobs);
        for v in sub.violations {
            report.push(v.class, format!("{device} {}", v.subject), v.detail);
        }
    }
    verify_online_stats(&format!("{device}"), &p.stats, report);
}

/// The partition-level counter identities (they hold at every epoch
/// boundary, which is the only time snapshots are captured):
/// every offer concluded (`arrivals == admitted + rejected`), every
/// shed victim was shed for exactly one reason, causes and fast
/// rejections never exceed the rejections they explain, and tenant
/// slices never exceed the totals they partition.
pub(crate) fn verify_online_stats(subject: &str, stats: &OnlineStats, report: &mut AuditReport) {
    if stats.arrivals != stats.admitted + stats.rejected {
        report.push(
            ViolationClass::CounterConservation,
            format!("{subject} arrivals"),
            format!(
                "{} arrivals != {} admitted + {} rejected",
                stats.arrivals, stats.admitted, stats.rejected
            ),
        );
    }
    if stats.shed != stats.shed_overload + stats.shed_infeasible {
        report.push(
            ViolationClass::CounterConservation,
            format!("{subject} shed"),
            format!(
                "{} shed != {} overload + {} infeasible",
                stats.shed, stats.shed_overload, stats.shed_infeasible
            ),
        );
    }
    if stats.fast_rejects > stats.rejected {
        report.push(
            ViolationClass::CounterConservation,
            format!("{subject} fast_rejects"),
            format!(
                "{} exceed {} rejections",
                stats.fast_rejects, stats.rejected
            ),
        );
    }
    let causes: usize = stats.reject_causes.values().sum();
    if causes > stats.rejected {
        report.push(
            ViolationClass::CounterConservation,
            format!("{subject} reject_causes"),
            format!(
                "{causes} attributed causes exceed {} rejections",
                stats.rejected
            ),
        );
    }
    verify_tenant_slices(
        subject,
        &stats.tenants,
        &[
            ("arrivals", stats.arrivals),
            ("admitted", stats.admitted),
            ("rejected", stats.rejected),
            ("shed", stats.shed),
        ],
        report,
    );
}

/// Tenant counters must partition the totals they slice: each tenant's
/// own verdicts balance (`arrivals == admitted + rejected`), the
/// anonymous tenant never gets a slice, and summed slices never exceed
/// the untenanted totals.
pub(crate) fn verify_tenant_slices(
    subject: &str,
    tenants: &BTreeMap<TenantId, TenantCounters>,
    totals: &[(&str, usize)],
    report: &mut AuditReport,
) {
    if tenants.contains_key(&TenantId(0)) {
        report.push(
            ViolationClass::CounterConservation,
            format!("{subject} tn0"),
            "anonymous traffic must stay unsliced",
        );
    }
    for (tenant, c) in tenants {
        if c.arrivals != c.admitted + c.rejected {
            report.push(
                ViolationClass::CounterConservation,
                format!("{subject} tn{}", tenant.0),
                format!(
                    "{} arrivals != {} admitted + {} rejected",
                    c.arrivals, c.admitted, c.rejected
                ),
            );
        }
    }
    for &(name, total) in totals {
        let sliced: usize = tenants
            .values()
            .map(|c| match name {
                "arrivals" => c.arrivals,
                "admitted" => c.admitted,
                "rejected" => c.rejected,
                _ => c.shed,
            })
            .sum();
        if sliced > total {
            report.push(
                ViolationClass::CounterConservation,
                format!("{subject} tenant {name}"),
                format!("tenant slices sum to {sliced}, exceeding the fleet total {total}"),
            );
        }
    }
}

/// Fleet-level counter identities, shared by the snapshot verifier
/// and the live commit-point certificate.
pub(crate) fn verify_fleet_stats(stats: &FleetStats, report: &mut AuditReport) {
    if stats.arrivals != stats.admitted + stats.rejected {
        report.push(
            ViolationClass::CounterConservation,
            "fleet arrivals",
            format!(
                "{} arrivals != {} admitted + {} rejected",
                stats.arrivals, stats.admitted, stats.rejected
            ),
        );
    }
    if stats.retry_admissions > stats.retries {
        report.push(
            ViolationClass::CounterConservation,
            "fleet retries",
            format!(
                "{} retry admissions exceed {} retries",
                stats.retry_admissions, stats.retries
            ),
        );
    }
    if stats.rehomed + stats.lost > stats.orphaned {
        report.push(
            ViolationClass::CounterConservation,
            "fleet orphans",
            format!(
                "{} rehomed + {} lost exceed {} orphaned",
                stats.rehomed, stats.lost, stats.orphaned
            ),
        );
    }
    verify_tenant_slices(
        "fleet",
        &stats.tenants,
        &[
            ("arrivals", stats.arrivals),
            ("admitted", stats.admitted),
            ("rejected", stats.rejected),
        ],
        report,
    );
}
