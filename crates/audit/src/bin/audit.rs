//! `audit` — the offline certificate verifier and determinism lint.
//!
//! ```text
//! audit schedule <snapshot-file>            per-partition schedule checks only
//! audit snapshot <snapshot-file>            full snapshot verification
//! audit wal <wal-file> [--snapshot <file>]  WAL continuity (+ digest replay)
//! audit wal <wal-file> --repair [--out <file>]  truncate a torn tail
//! audit trace <trace-file>                  event-trace verification
//! audit lint [workspace-root]               source determinism lint
//! audit gen <dir>                           emit fresh artifacts (fleet.snap, fleet.wal, trace.txt)
//! ```
//!
//! Exit codes: `0` clean, `1` usage or I/O error, `2` violations
//! (diagnostics on stderr).

use std::process::ExitCode;
use tagio_audit::report::AuditReport;
use tagio_audit::{gen, lint, snapshot, trace, walcheck};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => {
            if report.is_clean() {
                println!("clean");
                ExitCode::SUCCESS
            } else {
                eprint!("{report}");
                eprintln!("{} violation(s)", report.violations.len());
                ExitCode::from(2)
            }
        }
        Err(message) => {
            eprintln!("audit: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<AuditReport, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "schedule" => {
            let text = read(one_path(&args[1..])?)?;
            let (snap, mut report) = snapshot::verify_snapshot_text(&text);
            // Schedule-level view: keep parse failures and the per-slot
            // classes, drop fleet-level findings.
            if snap.is_some() {
                report.violations.retain(|v| {
                    use tagio_audit::ViolationClass as C;
                    matches!(
                        v.class,
                        C::Overlap
                            | C::ReleaseWindow
                            | C::DeadlineMiss
                            | C::WrongDuration
                            | C::DuplicateJob
                            | C::MissingJob
                            | C::UnknownJob
                    )
                });
            }
            Ok(report)
        }
        "snapshot" => {
            let text = read(one_path(&args[1..])?)?;
            Ok(snapshot::verify_snapshot_text(&text).1)
        }
        "wal" => run_wal(&args[1..]),
        "trace" => {
            let text = read(one_path(&args[1..])?)?;
            Ok(trace::verify_trace_text(&text).1)
        }
        "lint" => {
            let root = match &args[1..] {
                [] => std::path::PathBuf::from("."),
                [root] => std::path::PathBuf::from(root),
                _ => return Err(usage()),
            };
            let outcome = lint::run_lint(&root)?;
            eprintln!("audit lint: {} file(s) scanned", outcome.checked_files);
            Ok(outcome.to_report())
        }
        "gen" => {
            let dir = std::path::PathBuf::from(one_path(&args[1..])?);
            std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
            let artifacts = gen::generate();
            for (name, text) in [
                ("fleet.snap", &artifacts.snapshot_text),
                ("fleet.wal", &artifacts.wal_text),
                ("trace.txt", &artifacts.trace_text),
            ] {
                let path = dir.join(name);
                std::fs::write(&path, text)
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
                eprintln!("audit gen: wrote {}", path.display());
            }
            Ok(AuditReport::new())
        }
        _ => Err(usage()),
    }
}

fn run_wal(args: &[String]) -> Result<AuditReport, String> {
    let mut wal_path = None;
    let mut snap_path = None;
    let mut out_path = None;
    let mut repair = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--repair" => repair = true,
            "--snapshot" => {
                snap_path = Some(it.next().ok_or("--snapshot needs a file")?.clone());
            }
            "--out" => {
                out_path = Some(it.next().ok_or("--out needs a file")?.clone());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path if wal_path.is_none() => wal_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let wal_path = wal_path.ok_or_else(usage)?;
    let text = read(&wal_path)?;
    if repair {
        let (repaired, dropped) = walcheck::repair_wal_text(&text).map_err(|report| {
            format!("log is not repairable (defects beyond a torn tail):\n{report}")
        })?;
        let out = out_path.unwrap_or_else(|| wal_path.clone());
        std::fs::write(&out, &repaired).map_err(|e| format!("write {out}: {e}"))?;
        eprintln!("audit wal: dropped {dropped} uncommitted tail byte(s), wrote {out}");
        return Ok(AuditReport::new());
    }
    let (contents, mut report) = walcheck::verify_wal_text(&text);
    if let (Some(wal), Some(snap_path)) = (contents, snap_path) {
        let snap_text = read(&snap_path)?;
        let (snap, snap_report) = snapshot::verify_snapshot_text(&snap_text);
        report.merge(snap_report);
        if let Some(snap) = snap {
            report.merge(walcheck::verify_recovery(&snap, &wal));
        }
    }
    Ok(report)
}

fn one_path(args: &[String]) -> Result<&String, String> {
    match args {
        [path] => Ok(path),
        _ => Err(usage()),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))
}

fn usage() -> String {
    "usage: audit <schedule|snapshot|trace> <file> \
     | audit wal <file> [--snapshot <file>] [--repair [--out <file>]] \
     | audit lint [root] | audit gen <dir>"
        .to_string()
}
