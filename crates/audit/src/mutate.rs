//! The mutation harness.
//!
//! Takes *valid* artifacts, applies a catalogue of single-field
//! mutations (overlap a slot, break a digest, skip an epoch, corrupt a
//! tenant counter, reorder a commit…), and reports whether the
//! verifier named the exact violation class each mutation plants. The
//! test suites assert every applicable mutation is detected — a
//! silent pass means the verifier has a blind spot.

use crate::report::ViolationClass;
use crate::schedule::{verify_entries, verify_quality};
use crate::snapshot::verify_snapshot;
use crate::trace::verify_trace;
use crate::walcheck::{verify_recovery, verify_wal_contents, verify_wal_text};
use tagio_core::event::TimedEvent;
use tagio_core::job::{JobId, JobSet};
use tagio_core::schedule::{Schedule, ScheduleEntry};
use tagio_core::task::TaskId;
use tagio_core::time::{Duration, Time};
use tagio_online::{FleetSnapshot, WalContents};

/// One mutation's outcome: what was planted, what the verifier had to
/// name, and whether it did.
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// The catalogue entry.
    pub name: &'static str,
    /// The violation class the mutation plants.
    pub expected: ViolationClass,
    /// `true` when the verifier reported that class.
    pub detected: bool,
}

/// Schedule-level catalogue: entry mutations plus cached-quality
/// corruption. `schedule` must verify clean against `jobs`.
#[must_use]
pub fn mutate_schedule(schedule: &Schedule, jobs: &JobSet) -> Vec<MutationOutcome> {
    let base: Vec<ScheduleEntry> = schedule.as_slice().to_vec();
    assert!(base.len() >= 2, "harness needs at least two entries");
    let mut outcomes = Vec::new();
    let mut entry_case =
        |name: &'static str, expected: ViolationClass, mutate: &dyn Fn(&mut Vec<ScheduleEntry>)| {
            let mut entries = base.clone();
            mutate(&mut entries);
            let detected = verify_entries(&entries, jobs).has(expected);
            outcomes.push(MutationOutcome {
                name,
                expected,
                detected,
            });
        };
    entry_case("overlap-slot", ViolationClass::Overlap, &|e| {
        e[1].start = e[0].start;
    });
    // A release breach needs a job released after t = 0 (a
    // later-index release); index-0 jobs of zero-offset tasks release
    // at the epoch start and cannot start "too early".
    let late = base
        .iter()
        .position(|e| jobs.get(e.job).is_some_and(|j| j.release() > Time::ZERO))
        .expect("harness needs a job with a nonzero release");
    entry_case(
        "start-before-release",
        ViolationClass::ReleaseWindow,
        &|e| {
            e[late].start = Time::ZERO;
        },
    );
    entry_case("miss-deadline", ViolationClass::DeadlineMiss, &|e| {
        e[0].start += Duration::from_secs(3600);
    });
    entry_case("wrong-duration", ViolationClass::WrongDuration, &|e| {
        e[0].duration += Duration::from_micros(1);
    });
    entry_case("duplicate-job", ViolationClass::DuplicateJob, &|e| {
        let dup = e[0];
        e.push(dup);
    });
    entry_case("drop-job", ViolationClass::MissingJob, &|e| {
        e.remove(0);
    });
    entry_case("alien-job", ViolationClass::UnknownJob, &|e| {
        let mut alien = e[0];
        alien.job = JobId {
            task: TaskId(u32::MAX),
            index: 0,
        };
        e.push(alien);
    });
    // Cached-quality corruption: the bit-for-bit cross-check must see
    // through both a wrong Ψ and a wrong Υ.
    let (psi, upsilon) = crate::schedule::recompute_quality(schedule, jobs);
    outcomes.push(MutationOutcome {
        name: "corrupt-psi",
        expected: ViolationClass::QualityMismatch,
        detected: verify_quality(schedule, jobs, psi + 0.5, upsilon)
            .has(ViolationClass::QualityMismatch),
    });
    outcomes.push(MutationOutcome {
        name: "corrupt-upsilon",
        expected: ViolationClass::QualityMismatch,
        detected: verify_quality(schedule, jobs, psi, f64::from_bits(upsilon.to_bits() ^ 1))
            .has(ViolationClass::QualityMismatch),
    });
    outcomes
}

/// Snapshot catalogue (struct level). `snap` must verify clean, carry
/// at least two partitions, and its first partition at least two
/// schedule entries. Tenant mutations apply only when tenant state is
/// present.
#[must_use]
pub fn mutate_snapshot(snap: &FleetSnapshot) -> Vec<MutationOutcome> {
    assert!(snap.partitions.len() >= 2, "harness needs two partitions");
    assert!(
        snap.partitions[0].entries.len() >= 2,
        "harness needs a populated first partition"
    );
    let mut outcomes = Vec::new();
    let mut case =
        |name: &'static str, expected: ViolationClass, mutate: &dyn Fn(&mut FleetSnapshot)| {
            let mut s = snap.clone();
            mutate(&mut s);
            outcomes.push(MutationOutcome {
                name,
                expected,
                detected: verify_snapshot(&s).has(expected),
            });
        };
    case("overlap-slot", ViolationClass::Overlap, &|s| {
        let e = &mut s.partitions[0].entries;
        e[1].start = e[0].start;
    });
    case("drop-entry", ViolationClass::MissingJob, &|s| {
        s.partitions[0].entries.remove(0);
    });
    case("double-owner", ViolationClass::OwnershipViolation, &|s| {
        let stolen = s.partitions[0].active[0].clone();
        s.partitions[1].active.push(stolen);
    });
    case("orphan-owner", ViolationClass::OwnershipViolation, &|s| {
        let device = s.partitions[0].device;
        s.owner.insert(TaskId(u32::MAX), device);
    });
    case(
        "wrong-owner-device",
        ViolationClass::OwnershipViolation,
        &|s| {
            let other = s.partitions[1].device;
            let task = s.partitions[0].active[0].id();
            s.owner.insert(task, other);
        },
    );
    case("reorder-partitions", ViolationClass::PartitionOrder, &|s| {
        s.partitions.swap(0, 1);
    });
    case(
        "corrupt-fleet-counter",
        ViolationClass::CounterConservation,
        &|s| {
            s.stats.admitted += 1;
        },
    );
    case(
        "corrupt-partition-counter",
        ViolationClass::CounterConservation,
        &|s| {
            s.partitions[0].stats.rejected += 1;
        },
    );
    case(
        "corrupt-shed-split",
        ViolationClass::CounterConservation,
        &|s| {
            s.partitions[0].stats.shed += 1;
        },
    );
    case("epoch-skew", ViolationClass::CounterConservation, &|s| {
        s.epoch += 1;
    });
    if !snap.stats.tenants.is_empty() {
        case(
            "corrupt-tenant-counter",
            ViolationClass::CounterConservation,
            &|s| {
                let c = s
                    .stats
                    .tenants
                    .values_mut()
                    .next()
                    .expect("tenants present");
                c.arrivals += 1;
            },
        );
        case(
            "inflate-tenant-slice",
            ViolationClass::CounterConservation,
            &|s| {
                let total = s.stats.arrivals;
                let c = s
                    .stats
                    .tenants
                    .values_mut()
                    .next()
                    .expect("tenants present");
                // Keep the tenant's own identity intact but blow the
                // slice past the fleet total it partitions.
                c.arrivals += total + 1;
                c.admitted += total + 1;
            },
        );
    }
    outcomes
}

/// WAL catalogue (contents level, plus replay digests against `snap`).
/// `wal` must verify clean against `snap` and hold at least three
/// epochs.
#[must_use]
pub fn mutate_wal(snap: &FleetSnapshot, wal: &WalContents) -> Vec<MutationOutcome> {
    assert!(wal.epochs.len() >= 3, "harness needs three epochs");
    let mut outcomes = Vec::new();
    let mut standalone =
        |name: &'static str, expected: ViolationClass, mutate: &dyn Fn(&mut WalContents)| {
            let mut w = wal.clone();
            mutate(&mut w);
            outcomes.push(MutationOutcome {
                name,
                expected,
                detected: verify_wal_contents(&w).has(expected),
            });
        };
    standalone("skip-epoch", ViolationClass::EpochGap, &|w| {
        w.epochs.remove(1);
    });
    standalone("reorder-commit", ViolationClass::EpochGap, &|w| {
        w.epochs.swap(0, 1);
    });
    standalone("break-seed", ViolationClass::SeedMismatch, &|w| {
        w.epochs[1].seed ^= 1;
    });
    let mut replayed =
        |name: &'static str, expected: ViolationClass, mutate: &dyn Fn(&mut WalContents)| {
            let mut w = wal.clone();
            mutate(&mut w);
            outcomes.push(MutationOutcome {
                name,
                expected,
                detected: verify_recovery(snap, &w).has(expected),
            });
        };
    replayed(
        "break-schedule-digest",
        ViolationClass::DigestMismatch,
        &|w| {
            let record = w.epochs.last_mut().expect("epochs present");
            let (_, digests) = record
                .digests
                .iter_mut()
                .next()
                .expect("record has digests");
            digests.0 ^= 1;
        },
    );
    replayed("break-stats-digest", ViolationClass::DigestMismatch, &|w| {
        let record = w.epochs.last_mut().expect("epochs present");
        let (_, digests) = record
            .digests
            .iter_mut()
            .next()
            .expect("record has digests");
        digests.1 ^= 1;
    });
    replayed("drop-replay-event", ViolationClass::DigestMismatch, &|w| {
        // Losing an event from a committed record must surface as
        // divergence the moment that epoch replays.
        let record = w.epochs.last_mut().expect("epochs present");
        if !record.events.is_empty() {
            record.events.remove(0);
        }
    });
    outcomes
}

/// WAL text catalogue: the defects only visible in the byte stream.
#[must_use]
pub fn mutate_wal_text(text: &str) -> Vec<MutationOutcome> {
    let mut outcomes = Vec::new();
    let mut case = |name: &'static str, expected: ViolationClass, mutated: String| {
        let (_, report) = verify_wal_text(&mutated);
        outcomes.push(MutationOutcome {
            name,
            expected,
            detected: report.has(expected),
        });
    };
    // Tear the tail: cut the final commit line in half.
    let last_commit = text.rfind("\ncommit ").expect("log has a commit");
    case(
        "tear-tail",
        ViolationClass::TornTail,
        text[..last_commit + "\ncommit ".len()].to_string(),
    );
    // Interior corruption: mangle the first commit verb.
    case(
        "corrupt-interior",
        ViolationClass::WalMalformed,
        text.replacen("commit ", "commix ", 1),
    );
    outcomes
}

/// Trace catalogue.
#[must_use]
pub fn mutate_trace(events: &[TimedEvent]) -> Vec<MutationOutcome> {
    let arrivals: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.event, tagio_core::event::SystemEvent::Arrival(_)))
        .map(|(i, _)| i)
        .collect();
    assert!(
        events.len() >= 2 && !arrivals.is_empty(),
        "harness needs a populated trace"
    );
    let mut outcomes = Vec::new();
    let mut case =
        |name: &'static str, expected: ViolationClass, mutate: &dyn Fn(&mut Vec<TimedEvent>)| {
            let mut t = events.to_vec();
            mutate(&mut t);
            outcomes.push(MutationOutcome {
                name,
                expected,
                detected: verify_trace(&t).has(expected),
            });
        };
    case("time-warp", ViolationClass::TimestampOrder, &|t| {
        let last = t.len() - 1;
        t[0].at = t[last].at + Duration::from_secs(1);
    });
    case(
        "duplicate-arrival",
        ViolationClass::DuplicateArrival,
        &|t| {
            let dup = t[arrivals[0]].clone();
            t.push(TimedEvent {
                at: t[t.len() - 1].at,
                event: dup.event,
            });
        },
    );
    outcomes
}
