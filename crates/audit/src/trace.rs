//! Independent event-trace verification.
//!
//! A trace drives replay, so its own well-formedness is an artifact
//! invariant: it must parse, its timestamps must never go backwards,
//! and no task may arrive twice without departing in between (the
//! fleet would reject the duplicate, turning a generator bug into a
//! silently skewed workload).

use crate::report::{AuditReport, ViolationClass};
use tagio_core::event::{SystemEvent, TimedEvent};
use tagio_core::task::TaskId;
use tagio_online::scenario::parse_trace;

/// Verifies trace text. Returns the parsed events when parsing
/// succeeded.
#[must_use]
pub fn verify_trace_text(text: &str) -> (Option<Vec<TimedEvent>>, AuditReport) {
    let mut report = AuditReport::new();
    let events = match parse_trace(text) {
        Ok(events) => events,
        Err(e) => {
            report.push(
                ViolationClass::TraceMalformed,
                format!("line {}", e.line),
                e.message,
            );
            return (None, report);
        }
    };
    report.merge(verify_trace(&events));
    (Some(events), report)
}

/// Verifies parsed trace events: monotone timestamps and no duplicate
/// arrivals of a still-live task.
#[must_use]
pub fn verify_trace(events: &[TimedEvent]) -> AuditReport {
    let mut report = AuditReport::new();
    for (i, pair) in events.windows(2).enumerate() {
        if pair[1].at < pair[0].at {
            report.push(
                ViolationClass::TimestampOrder,
                format!("event {}", i + 2),
                format!(
                    "at {}us, after an event at {}us",
                    pair[1].at.as_micros(),
                    pair[0].at.as_micros()
                ),
            );
        }
    }
    let mut alive: Vec<TaskId> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match &e.event {
            SystemEvent::Arrival(task) => {
                if alive.contains(&task.id()) {
                    report.push(
                        ViolationClass::DuplicateArrival,
                        format!("event {} {}", i + 1, task.id()),
                        "arrives again without departing first",
                    );
                } else {
                    alive.push(task.id());
                }
            }
            SystemEvent::Departure(id) => {
                alive.retain(|t| t != id);
            }
            _ => {}
        }
    }
    report
}
