//! Independent digest re-derivation.
//!
//! The WAL's commit lines carry per-partition `(schedule, stats)`
//! digests computed by `tagio_online::persist`. This module re-derives
//! them from the *documented* format (EXPERIMENTS.md, "WAL and
//! snapshot formats": 64-bit FNV-1a over the canonical entry fields
//! and decision counters) without calling the producing functions — a
//! shared bug in the producer cannot cancel out here.

use tagio_core::schedule::ScheduleEntry;
use tagio_online::OnlineStats;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A from-scratch 64-bit FNV-1a fold.
#[derive(Debug, Clone, Copy)]
pub struct AuditFnv(u64);

impl AuditFnv {
    /// The empty hash.
    #[must_use]
    pub fn new() -> AuditFnv {
        AuditFnv(FNV_OFFSET)
    }

    /// Folds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` as its 8 little-endian bytes.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// The digest.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for AuditFnv {
    fn default() -> AuditFnv {
        AuditFnv::new()
    }
}

/// Re-derives a partition's schedule digest: per entry in schedule
/// order, the task id, job index, start and duration in microseconds.
#[must_use]
pub fn rederive_schedule_digest(entries: &[ScheduleEntry]) -> u64 {
    let mut h = AuditFnv::new();
    for e in entries {
        h.u64(u64::from(e.job.task.0));
        h.u64(u64::from(e.job.index));
        h.u64(e.start.as_micros());
        h.u64(e.duration.as_micros());
    }
    h.finish()
}

/// Re-derives a partition's stats digest: the 16 decision counters in
/// declaration order, then reject causes (kebab-case name + count, in
/// cause order), then per-tenant counters when present. The wall-clock
/// fields (`repair_time`, `admission_time`) are deliberately excluded
/// — they are observability, not decisions.
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub fn rederive_stats_digest(stats: &OnlineStats) -> u64 {
    let mut h = AuditFnv::new();
    for v in [
        stats.arrivals,
        stats.admitted,
        stats.rejected,
        stats.fast_rejects,
        stats.shed_overload,
        stats.shed_infeasible,
        stats.departures,
        stats.repairs,
        stats.resyntheses,
        stats.fps_fallbacks,
        stats.shed,
        stats.spikes,
        stats.mode_changes,
        stats.ignored,
        stats.repair_events,
        stats.admission_events,
    ] {
        h.u64(v as u64);
    }
    for (&cause, &count) in &stats.reject_causes {
        h.bytes(cause.as_str().as_bytes());
        h.u64(count as u64);
    }
    for (&tenant, c) in &stats.tenants {
        h.u64(u64::from(tenant.0));
        for v in [c.arrivals, c.admitted, c.rejected, c.shed] {
            h.u64(v as u64);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagio_core::job::JobId;
    use tagio_core::task::TaskId;
    use tagio_core::time::{Duration, Time};
    use tagio_online::persist::{schedule_digest, stats_digest};
    use tagio_online::tenant::TenantCounters;
    use tagio_online::TenantId;

    #[test]
    fn schedule_digest_agrees_with_the_producer() {
        let entries = vec![
            ScheduleEntry {
                job: JobId {
                    task: TaskId(3),
                    index: 1,
                },
                start: Time::from_micros(250),
                duration: Duration::from_micros(500),
            },
            ScheduleEntry {
                job: JobId {
                    task: TaskId(7),
                    index: 0,
                },
                start: Time::from_micros(900),
                duration: Duration::from_micros(125),
            },
        ];
        let mut schedule = tagio_core::schedule::Schedule::new();
        for e in &entries {
            schedule.insert(*e);
        }
        assert_eq!(
            rederive_schedule_digest(schedule.as_slice()),
            schedule_digest(&schedule)
        );
        assert_ne!(
            rederive_schedule_digest(&entries[..1]),
            rederive_schedule_digest(&entries)
        );
    }

    #[test]
    fn stats_digest_agrees_with_the_producer() {
        let mut stats = OnlineStats {
            arrivals: 9,
            admitted: 6,
            rejected: 3,
            shed: 2,
            shed_overload: 2,
            ..OnlineStats::default()
        };
        stats.tenants.insert(
            TenantId(2),
            TenantCounters {
                arrivals: 4,
                admitted: 3,
                rejected: 1,
                shed: 0,
            },
        );
        // Wall clocks must not count.
        stats.repair_time = std::time::Duration::from_micros(1234);
        assert_eq!(rederive_stats_digest(&stats), stats_digest(&stats));
    }
}
