//! # tagio-audit — independent certificate verification + determinism lint
//!
//! The rest of the workspace *produces* schedules, snapshots, WALs and
//! traces; this crate re-checks them **without reusing the producing
//! code paths**. Every invariant the system rests on — per-slot
//! non-overlap and window feasibility, bit-exact cached Ψ/Υ,
//! fleet-wide single ownership, tenant-counter conservation, WAL epoch
//! continuity with independently re-derived digests, and the snapshot
//! parse → write byte fixed point — is re-derived from artifact bytes
//! and public observation surfaces alone, and failures come back as
//! structured [`AuditViolation`] reports, not booleans.
//!
//! Three consumption surfaces:
//!
//! - **[`certificate::ScheduleCertificate`]** — certify a *live*
//!   [`FleetScheduler`](tagio_online::FleetScheduler) at commit
//!   points. With the `debug-audit` feature,
//!   `certificate::install_commit_certification` hooks this into
//!   the end of every `apply_batch`.
//! - **the `audit` CLI** — `audit schedule|snapshot|wal|trace <file>`
//!   verifies artifacts offline (exit 2 + diagnostics on violation),
//!   `audit wal --repair` truncates a torn tail to the last committed
//!   epoch, `audit lint` runs the workspace determinism lint, and
//!   `audit gen` emits fresh artifacts from a scripted recovery
//!   scenario. See EXPERIMENTS.md for the full surface.
//! - **[`mutate`]** — the mutation harness: plants single-field
//!   defects in valid artifacts and asserts the verifier names the
//!   exact violation class.
//!
//! The [`lint`] module is the source-level half: an offline,
//! dependency-free analyzer enforcing no panicking idioms on
//! admission/commit/WAL hot paths, no wall clocks or unordered
//! containers in determinism-critical modules, and EXPERIMENTS.md
//! documentation for every emitted metric name — with an explicit,
//! shrink-only allowlist (`AUDIT_ALLOWLIST.txt`).

pub mod certificate;
pub mod digest;
pub mod gen;
pub mod lint;
pub mod mutate;
pub mod report;
pub mod schedule;
pub mod snapshot;
pub mod trace;
pub mod walcheck;

pub use certificate::ScheduleCertificate;
pub use report::{AuditReport, AuditViolation, ViolationClass};
