//! Independent schedule verification.
//!
//! Re-derives every per-partition schedule invariant from the job set
//! alone — none of the producing code paths (`Schedule::validate`, the
//! repair ladder's `Timeline`) are consulted, and unlike `validate`
//! (which stops at the first defect) every violation is reported.

use crate::report::{AuditReport, ViolationClass};
use tagio_core::job::{JobId, JobSet};
use tagio_core::schedule::{Schedule, ScheduleEntry};
use tagio_core::time::Time;

/// Checks `entries` against `jobs`: exactly one entry per job, each
/// inside its release/deadline window at WCET duration, and no two
/// entries overlapping in time. Reports *all* violations.
#[must_use]
pub fn verify_entries(entries: &[ScheduleEntry], jobs: &JobSet) -> AuditReport {
    let mut report = AuditReport::new();
    // Pass 1 — per-entry window/duration/identity checks, plus the
    // entry → job coverage map.
    let mut seen: Vec<JobId> = Vec::with_capacity(entries.len());
    for e in entries {
        let subject = format!("job t{}#{}", e.job.task.0, e.job.index);
        let Some(job) = jobs.get(e.job) else {
            report.push(
                ViolationClass::UnknownJob,
                subject,
                "scheduled but absent from the active job set",
            );
            continue;
        };
        if seen.contains(&e.job) {
            report.push(
                ViolationClass::DuplicateJob,
                subject.clone(),
                "scheduled more than once",
            );
        } else {
            seen.push(e.job);
        }
        if e.duration != job.wcet() {
            report.push(
                ViolationClass::WrongDuration,
                subject.clone(),
                format!(
                    "entry runs {}us, WCET is {}us",
                    e.duration.as_micros(),
                    job.wcet().as_micros()
                ),
            );
        }
        if e.start < job.release() {
            report.push(
                ViolationClass::ReleaseWindow,
                subject.clone(),
                format!(
                    "starts at {}us before release {}us",
                    e.start.as_micros(),
                    job.release().as_micros()
                ),
            );
        }
        // The deadline check uses the entry's own duration (already
        // flagged above if wrong), so a correct-duration entry past
        // `latest_start` and a padded entry both surface here.
        if e.start.as_micros() + e.duration.as_micros() > job.abs_deadline().as_micros() {
            report.push(
                ViolationClass::DeadlineMiss,
                subject,
                format!(
                    "finishes at {}us past deadline {}us",
                    e.start.as_micros() + e.duration.as_micros(),
                    job.abs_deadline().as_micros()
                ),
            );
        }
    }
    // Pass 2 — coverage: every job of the set must be scheduled.
    seen.sort_unstable();
    for job in jobs {
        if seen.binary_search(&job.id()).is_err() {
            report.push(
                ViolationClass::MissingJob,
                format!("job t{}#{}", job.id().task.0, job.id().index),
                "active but never scheduled",
            );
        }
    }
    // Pass 3 — non-overlap, on an independently sorted copy (the
    // artifact's own entry order is not trusted).
    let mut spans: Vec<(u64, u64, JobId)> = entries
        .iter()
        .map(|e| {
            (
                e.start.as_micros(),
                e.start.as_micros() + e.duration.as_micros(),
                e.job,
            )
        })
        .collect();
    spans.sort_unstable();
    for pair in spans.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.1 > b.0 {
            report.push(
                ViolationClass::Overlap,
                format!(
                    "jobs t{}#{} and t{}#{}",
                    a.2.task.0, a.2.index, b.2.task.0, b.2.index
                ),
                format!("[{}, {})us overlaps [{}, …)us", a.0, a.1, b.0),
            );
        }
    }
    report
}

/// Cross-checks cached Ψ/Υ against an independent recomputation,
/// bit-for-bit. The recomputation mirrors the documented metric
/// definition (exact-start fraction; achieved / peak quality summed in
/// job-set order from `-0.0`) using only the `Job` quality-curve leaves
/// — it shares no code with `tagio_core::metrics`.
#[must_use]
pub fn verify_quality(
    schedule: &Schedule,
    jobs: &JobSet,
    cached_psi: f64,
    cached_upsilon: f64,
) -> AuditReport {
    let mut report = AuditReport::new();
    let (psi, upsilon) = recompute_quality(schedule, jobs);
    if psi.to_bits() != cached_psi.to_bits() {
        report.push(
            ViolationClass::QualityMismatch,
            "psi",
            format!("cached {cached_psi:?} != recomputed {psi:?}"),
        );
    }
    if upsilon.to_bits() != cached_upsilon.to_bits() {
        report.push(
            ViolationClass::QualityMismatch,
            "upsilon",
            format!("cached {cached_upsilon:?} != recomputed {upsilon:?}"),
        );
    }
    report
}

/// The audit-side (Ψ, Υ) recomputation. Summation order matters for
/// bit-exactness: jobs are visited in job-set order and the quality
/// accumulator starts at `-0.0` (the fold identity of `Iterator::sum`).
#[must_use]
pub fn recompute_quality(schedule: &Schedule, jobs: &JobSet) -> (f64, f64) {
    if jobs.is_empty() {
        return (1.0, 1.0);
    }
    let mut index: Vec<(JobId, Time)> = schedule.iter().map(|e| (e.job, e.start)).collect();
    index.sort_unstable();
    let mut exact = 0usize;
    let mut achieved = -0.0f64;
    for job in jobs {
        let pos = index.partition_point(|&(j, _)| j < job.id());
        let start = match index.get(pos) {
            Some(&(j, start)) if j == job.id() => start,
            _ => continue,
        };
        if start == job.ideal_start() {
            exact += 1;
        }
        achieved += job.quality_at(start);
    }
    #[allow(clippy::cast_precision_loss)]
    let psi = exact as f64 / jobs.len() as f64;
    let peak = jobs.peak_quality();
    let upsilon = if peak <= 0.0 || peak.is_nan() {
        0.0
    } else {
        achieved / peak
    };
    (psi, upsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagio_core::metrics;
    use tagio_core::schedule::entry_for;
    use tagio_core::task::{DeviceId, IoTask, TaskId, TaskSet};
    use tagio_core::time::Duration;

    fn mk(id: u32, delta_ms: u64) -> IoTask {
        IoTask::builder(TaskId(id), DeviceId(0))
            .wcet(Duration::from_micros(500))
            .period(Duration::from_millis(8))
            .ideal_offset(Duration::from_millis(delta_ms))
            .margin(Duration::from_millis(1))
            .quality(f64::from(id) + 1.0, 0.0)
            .build()
            .unwrap()
    }

    fn valid() -> (Schedule, JobSet) {
        let tasks: TaskSet = vec![mk(0, 2), mk(1, 4)].into_iter().collect();
        let jobs = JobSet::expand(&tasks);
        let mut schedule = Schedule::new();
        for job in &jobs {
            schedule.insert(entry_for(job, job.ideal_start()));
        }
        assert!(schedule.validate(&jobs).is_ok());
        (schedule, jobs)
    }

    #[test]
    fn valid_schedule_is_clean() {
        let (schedule, jobs) = valid();
        assert!(verify_entries(schedule.as_slice(), &jobs).is_clean());
    }

    #[test]
    fn recomputation_matches_core_metrics_bit_for_bit() {
        let (schedule, jobs) = valid();
        let (psi, upsilon) = recompute_quality(&schedule, &jobs);
        assert_eq!(psi.to_bits(), metrics::psi(&schedule, &jobs).to_bits());
        assert_eq!(
            upsilon.to_bits(),
            metrics::upsilon(&schedule, &jobs).to_bits()
        );
        assert!(verify_quality(&schedule, &jobs, psi, upsilon).is_clean());
        assert!(verify_quality(&schedule, &jobs, psi, upsilon + 0.25)
            .has(ViolationClass::QualityMismatch));
    }

    #[test]
    fn every_defect_class_is_named_and_all_are_reported() {
        let (schedule, jobs) = valid();
        let mut entries: Vec<ScheduleEntry> = schedule.as_slice().to_vec();
        // Two defects at once: an overlap pair and a padded duration.
        // Unlike `Schedule::validate`, both must be reported.
        entries[1].start = entries[0].start;
        entries[0].duration += Duration::from_micros(1);
        let report = verify_entries(&entries, &jobs);
        assert!(report.has(ViolationClass::Overlap), "{report}");
        assert!(report.has(ViolationClass::WrongDuration), "{report}");
        assert!(report.violations.len() >= 2, "all defects reported");
    }

    #[test]
    fn empty_set_has_unit_quality() {
        let jobs = JobSet::from_jobs(Vec::new(), Duration::ZERO);
        assert_eq!(recompute_quality(&Schedule::new(), &jobs), (1.0, 1.0));
    }
}
