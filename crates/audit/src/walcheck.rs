//! Independent WAL verification and torn-tail repair.
//!
//! Standalone checks (`verify_wal_text`) re-derive the log's own
//! invariants: parseability, a single RNG seed, consecutive epochs,
//! and a committed (not torn) tail. Given a base snapshot,
//! `verify_recovery` replays the suffix through the ordinary pipeline
//! and re-derives every commit digest with this crate's own FNV fold
//! (`crate::digest`) — the producer's digest code is never consulted,
//! so a shared producer bug cannot cancel out.

use crate::digest::{rederive_schedule_digest, rederive_stats_digest};
use crate::report::{AuditReport, ViolationClass};
use tagio_online::wal::parse_wal;
use tagio_online::{FleetSnapshot, WalContents};

/// Verifies WAL text standalone: parse, torn tail, seed uniformity and
/// epoch continuity. Returns the parsed contents when parsing
/// succeeded.
#[must_use]
pub fn verify_wal_text(text: &str) -> (Option<WalContents>, AuditReport) {
    let mut report = AuditReport::new();
    let wal = match parse_wal(text) {
        Ok(wal) => wal,
        Err(e) => {
            report.push(
                ViolationClass::WalMalformed,
                format!("line {}", e.line),
                e.message,
            );
            return (None, report);
        }
    };
    if wal.torn_tail {
        report.push(
            ViolationClass::TornTail,
            "tail",
            "log ends mid-record (run `audit wal --repair` to truncate)",
        );
    }
    report.merge(verify_wal_contents(&wal));
    (Some(wal), report)
}

/// The in-memory continuity checks shared by text and recovery paths.
#[must_use]
pub fn verify_wal_contents(wal: &WalContents) -> AuditReport {
    let mut report = AuditReport::new();
    for pair in wal.epochs.windows(2) {
        if pair[1].epoch != pair[0].epoch + 1 {
            report.push(
                ViolationClass::EpochGap,
                format!("epoch {}", pair[1].epoch),
                format!(
                    "follows epoch {}, expected {}",
                    pair[0].epoch,
                    pair[0].epoch + 1
                ),
            );
        }
        if pair[1].seed != pair[0].seed {
            report.push(
                ViolationClass::SeedMismatch,
                format!("epoch {}", pair[1].epoch),
                format!(
                    "sealed under seed {}, log opened under {}",
                    pair[1].seed, pair[0].seed
                ),
            );
        }
    }
    report
}

/// Replays the WAL suffix after `snap` through the ordinary
/// `apply_batch` pipeline, re-deriving each commit line's digests
/// independently. Reports seed mismatches, epoch gaps and digest
/// divergence at the epoch that caused them.
#[must_use]
pub fn verify_recovery(snap: &FleetSnapshot, wal: &WalContents) -> AuditReport {
    let mut report = AuditReport::new();
    let mut fleet = match snap.restore() {
        Ok(fleet) => fleet,
        Err(e) => {
            report.push(ViolationClass::SnapshotMalformed, "snapshot", e);
            return report;
        }
    };
    let mut expected = snap.epoch + 1;
    for record in &wal.epochs {
        if record.epoch <= snap.epoch {
            continue; // already folded into the snapshot
        }
        if record.seed != snap.config.seed {
            report.push(
                ViolationClass::SeedMismatch,
                format!("epoch {}", record.epoch),
                format!(
                    "sealed under seed {}, snapshot runs seed {}",
                    record.seed, snap.config.seed
                ),
            );
            return report;
        }
        if record.epoch != expected {
            report.push(
                ViolationClass::EpochGap,
                format!("epoch {}", record.epoch),
                format!("expected epoch {expected}"),
            );
            return report;
        }
        expected += 1;
        let _ = fleet.apply_batch(&record.events);
        for (&device, &(schedule, stats)) in &record.digests {
            let Some(p) = fleet.partition(device) else {
                report.push(
                    ViolationClass::DigestMismatch,
                    format!("epoch {} {device}", record.epoch),
                    "commit line names a partition the replayed fleet does not have",
                );
                continue;
            };
            let derived = rederive_schedule_digest(p.schedule().as_slice());
            if derived != schedule {
                report.push(
                    ViolationClass::DigestMismatch,
                    format!("epoch {} {device}", record.epoch),
                    format!("schedule digest {schedule:016x} != re-derived {derived:016x}"),
                );
            }
            let derived = rederive_stats_digest(p.stats());
            if derived != stats {
                report.push(
                    ViolationClass::DigestMismatch,
                    format!("epoch {} {device}", record.epoch),
                    format!("stats digest {stats:016x} != re-derived {derived:016x}"),
                );
            }
        }
    }
    report
}

/// Truncates a torn tail to the last committed epoch, byte-exactly:
/// everything up to and including the final `commit` line survives
/// unchanged; the uncommitted tail (open record, partial line, or
/// trailing comments past the last commit) is dropped. Interior
/// corruption is *not* repairable — the caller gets the parse report
/// instead.
///
/// Returns the repaired text and the number of bytes dropped.
///
/// # Errors
/// Returns the verification report when the log has defects other
/// than a torn tail (interior corruption, epoch gaps, seed drift).
pub fn repair_wal_text(text: &str) -> Result<(String, usize), AuditReport> {
    let (_, report) = verify_wal_text(text);
    let fatal: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.class != ViolationClass::TornTail)
        .cloned()
        .collect();
    if !fatal.is_empty() {
        return Err(AuditReport { violations: fatal });
    }
    let keep = committed_prefix_len(text);
    Ok((text[..keep].to_string(), text.len() - keep))
}

/// The byte length of the committed prefix: up to and including the
/// newline of the last `commit` line (0 when nothing committed).
#[must_use]
pub fn committed_prefix_len(text: &str) -> usize {
    let mut keep = 0usize;
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        offset += line.len();
        // Only a newline-terminated commit line is a sealed record; a
        // partial final line is torn by definition.
        if line.ends_with('\n') && line.trim().starts_with("commit ") {
            keep = offset;
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_prefix_stops_at_the_last_commit_line() {
        let text = "epoch 1\nev depart t9\ncommit 1 seed=7 events=1\nepoch 2\nev depart t8\n";
        let keep = committed_prefix_len(text);
        assert!(text[..keep].ends_with("commit 1 seed=7 events=1\n"));
        assert_eq!(&text[keep..], "epoch 2\nev depart t8\n");
        // A commit line without its newline is itself torn.
        let torn = &text[..text.len() - "epoch 2\nev depart t8\n".len() - 1];
        assert!(torn.ends_with("events=1"));
        assert_eq!(committed_prefix_len(torn), 0);
    }
}
