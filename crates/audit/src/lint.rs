//! The workspace determinism lint (`audit lint`).
//!
//! An offline, dependency-free token/line-level analyzer over
//! `crates/*/src` enforcing repo-specific rules the compiler cannot:
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `no-panic` | admission/commit/WAL hot paths | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `no-wall-clock` | determinism-critical modules | `Instant::now`, `SystemTime` |
//! | `no-unordered-iter` | determinism-critical modules | `HashMap`, `HashSet` (ordered containers or an audited, allowlisted membership-only use required) |
//! | `metrics-documented` | every crate | metric names `push`ed into a `MetricSet` that EXPERIMENTS.md does not document |
//!
//! Doc comments, string literals and `#[cfg(test)]` modules never
//! fire a rule. Findings are suppressed only by an explicit entry in
//! `AUDIT_ALLOWLIST.txt` (`<rule> <path-suffix> <line-needle…>`), and
//! an entry that suppresses nothing is itself an error — the
//! allowlist can only shrink.

use crate::report::{AuditReport, ViolationClass};
use std::fmt;
use std::path::{Path, PathBuf};

/// Modules on the admission/commit/WAL hot path: a panic here takes
/// down live scheduling, so every panicking idiom must be either
/// removed or explicitly allowlisted as an audited invariant.
const HOT_PATH: &[&str] = &[
    "crates/online/src/service.rs",
    "crates/online/src/fleet.rs",
    "crates/online/src/wal.rs",
    "crates/online/src/persist.rs",
    "crates/online/src/tenant.rs",
    "crates/sched/src/fps.rs",
    "crates/sched/src/cache.rs",
    "crates/sched/src/analysis.rs",
    "crates/sched/src/heuristic/repair.rs",
    "crates/sched/src/heuristic/lccd.rs",
    "crates/core/src/pool.rs",
];

/// Modules whose decisions feed committed state or digests: wall
/// clocks and unordered iteration here break bit-determinism across
/// pool widths and restore/replay.
const DETERMINISM: &[&str] = &[
    "crates/online/src/service.rs",
    "crates/online/src/fleet.rs",
    "crates/online/src/wal.rs",
    "crates/online/src/persist.rs",
    "crates/online/src/tenant.rs",
    "crates/online/src/scenario.rs",
    "crates/sched/src/cache.rs",
    "crates/sched/src/analysis.rs",
    "crates/sched/src/heuristic/repair.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/schedule.rs",
];

const PANIC_NEEDLES: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];
const CLOCK_NEEDLES: &[&str] = &["Instant::now", "SystemTime"];
const UNORDERED_NEEDLES: &[&str] = &["HashMap", "HashSet"];

/// One lint rule violation.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// The rule that fired.
    pub rule: &'static str,
    /// Repo-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// The lint pass outcome.
#[derive(Debug, Clone, Default)]
pub struct LintOutcome {
    /// Rule violations not covered by the allowlist.
    pub findings: Vec<LintFinding>,
    /// Allowlist entries that suppressed nothing (stale entries are
    /// themselves failures — the allowlist can only shrink).
    pub unused_allowlist: Vec<String>,
    /// How many source files were scanned.
    pub checked_files: usize,
}

impl LintOutcome {
    /// `true` when no rule fired and no allowlist entry is stale.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unused_allowlist.is_empty()
    }

    /// Renders the outcome as an [`AuditReport`].
    #[must_use]
    pub fn to_report(&self) -> AuditReport {
        let mut report = AuditReport::new();
        for f in &self.findings {
            report.push(
                ViolationClass::Lint,
                format!("{}:{}", f.path, f.line),
                format!("[{}] {}", f.rule, f.excerpt),
            );
        }
        for e in &self.unused_allowlist {
            report.push(
                ViolationClass::Lint,
                "AUDIT_ALLOWLIST.txt",
                format!("stale entry suppresses nothing: `{e}`"),
            );
        }
        report
    }
}

#[derive(Debug, Clone)]
struct AllowEntry {
    rule: String,
    path_suffix: String,
    needle: String,
    raw: String,
    used: bool,
}

/// Runs the full lint pass over `root` (the workspace directory).
///
/// # Errors
/// Returns a message when the workspace layout is unreadable (no
/// `crates/` directory, unreadable files, or a missing EXPERIMENTS.md
/// while metric names are emitted).
pub fn run_lint(root: &Path) -> Result<LintOutcome, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!("{} has no crates/ directory", root.display()));
    }
    let mut files = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", crates_dir.display()))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let experiments = std::fs::read_to_string(root.join("EXPERIMENTS.md")).unwrap_or_default();
    let mut allow = load_allowlist(root)?;
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        lint_file(&rel, &text, &experiments, &mut findings);
    }
    // Allowlist application: a finding survives only when no entry
    // covers it; an entry is "used" when it covered at least one.
    findings.retain(|f| {
        let mut covered = false;
        for e in &mut allow {
            if e.rule == f.rule && f.path.ends_with(&e.path_suffix) && f.excerpt.contains(&e.needle)
            {
                e.used = true;
                covered = true;
            }
        }
        !covered
    });
    Ok(LintOutcome {
        findings,
        unused_allowlist: allow
            .into_iter()
            .filter(|e| !e.used)
            .map(|e| e.raw)
            .collect(),
        checked_files: files.len(),
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn load_allowlist(root: &Path) -> Result<Vec<AllowEntry>, String> {
    let path = root.join("AUDIT_ALLOWLIST.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Ok(Vec::new()); // no allowlist: nothing suppressed
    };
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.splitn(3, char::is_whitespace);
        let (Some(rule), Some(path_suffix), Some(needle)) =
            (words.next(), words.next(), words.next())
        else {
            return Err(format!(
                "AUDIT_ALLOWLIST.txt:{}: expected `<rule> <path-suffix> <line-needle>`",
                i + 1
            ));
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path_suffix: path_suffix.to_string(),
            needle: needle.trim().to_string(),
            raw: line.to_string(),
            used: false,
        });
    }
    Ok(entries)
}

/// Lints one file. `rel` is the repo-relative path with `/` separators.
fn lint_file(rel: &str, text: &str, experiments: &str, findings: &mut Vec<LintFinding>) {
    // Two scrubbed views with identical byte offsets: `code` blanks
    // comments AND string interiors (structure only); `with_strings`
    // blanks comments but keeps string contents (metric names).
    let mut code = scrub(text, false);
    let mut with_strings = scrub(text, true);
    for (start, end) in test_regions(&code) {
        blank_region(&mut code, start, end);
        blank_region(&mut with_strings, start, end);
    }
    let is_hot = HOT_PATH.iter().any(|m| rel.ends_with(m));
    let is_det = DETERMINISM.iter().any(|m| rel.ends_with(m));
    for (li, scrubbed_line) in code.lines().enumerate() {
        let mut fire = |rule: &'static str| {
            let excerpt = text.lines().nth(li).unwrap_or_default().trim().to_string();
            findings.push(LintFinding {
                rule,
                path: rel.to_string(),
                line: li + 1,
                excerpt,
            });
        };
        if is_hot && PANIC_NEEDLES.iter().any(|n| scrubbed_line.contains(n)) {
            fire("no-panic");
        }
        if is_det {
            if CLOCK_NEEDLES.iter().any(|n| scrubbed_line.contains(n)) {
                fire("no-wall-clock");
            }
            if UNORDERED_NEEDLES.iter().any(|n| scrubbed_line.contains(n)) {
                fire("no-unordered-iter");
            }
        }
    }
    lint_metric_names(rel, text, &code, &with_strings, experiments, findings);
}

/// Finds two-argument `.push("name", …)` / `.push(format!("…"), …)`
/// metric emissions and requires every literal name segment to appear
/// in EXPERIMENTS.md. Single-argument pushes (`Vec::push`) never
/// match — the second argument is what marks a `MetricSet` emission.
fn lint_metric_names(
    rel: &str,
    text: &str,
    code: &str,
    with_strings: &str,
    experiments: &str,
    findings: &mut Vec<LintFinding>,
) {
    let bytes = code.as_bytes();
    let mut at = 0usize;
    while let Some(hit) = code[at..].find(".push(") {
        let open = at + hit + ".push(".len() - 1;
        at = open + 1;
        let Some((name, after)) = push_literal_name(code, with_strings, open) else {
            continue;
        };
        // Two-arg check: the literal must be followed by a comma.
        let mut k = after;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if k >= bytes.len() || bytes[k] != b',' {
            continue; // single-argument push — not a MetricSet emission
        }
        if !plausible_metric_name(&name) {
            continue;
        }
        // Every literal segment outside `{…}` placeholders must be
        // documented (placeholders themselves are runtime-expanded,
        // e.g. `{tenant}_arrivals` is documented as `tn<k>_arrivals`).
        let undocumented = literal_segments(&name)
            .into_iter()
            .any(|seg| !experiments.contains(&seg));
        if undocumented {
            let line = code[..open].matches('\n').count();
            findings.push(LintFinding {
                rule: "metrics-documented",
                path: rel.to_string(),
                line: line + 1,
                excerpt: format!(
                    "metric `{name}` is emitted but not documented in EXPERIMENTS.md ({})",
                    text.lines().nth(line).unwrap_or_default().trim()
                ),
            });
        }
    }
}

/// Extracts the string-literal first argument of a `push(` whose open
/// paren is at `open`. Handles a bare literal and `format!("…")`.
/// Returns the literal (from the strings-kept view) and the offset
/// just past the argument.
fn push_literal_name(code: &str, with_strings: &str, open: usize) -> Option<(String, usize)> {
    let bytes = code.as_bytes();
    let mut j = open + 1;
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        let close = code[j + 1..].find('"')? + j + 1;
        return Some((with_strings[j + 1..close].to_string(), close + 1));
    }
    if code[j..].starts_with("format!") {
        let inner_open = code[j..].find('(')? + j;
        let inner_close = matching_paren(code, inner_open)?;
        let q1 = code[inner_open..inner_close].find('"')? + inner_open;
        let q2 = code[q1 + 1..inner_close].find('"')? + q1 + 1;
        return Some((with_strings[q1 + 1..q2].to_string(), inner_close + 1));
    }
    None
}

fn matching_paren(code: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, b) in code.bytes().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// A metric name: identifier characters plus `{…}` placeholders.
fn plausible_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '{' | '}'))
}

/// The literal pieces of a possibly-formatted name: `{tenant}_psi`
/// yields `["_psi"]`, a plain name yields itself.
fn literal_segments(name: &str) -> Vec<String> {
    let mut segments = Vec::new();
    let mut current = String::new();
    let mut depth = 0usize;
    for c in name.chars() {
        match c {
            '{' => {
                depth += 1;
                if !current.is_empty() {
                    segments.push(std::mem::take(&mut current));
                }
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => current.push(c),
            _ => {}
        }
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Blanks comments (line, doc and nested block) and — when
/// `keep_strings` is false — string/char literal interiors, replacing
/// them with spaces so byte offsets and line numbers survive.
fn scrub(text: &str, keep_strings: bool) -> String {
    let bytes = text.as_bytes();
    let mut out: Vec<u8> = bytes.to_vec();
    let mut i = 0usize;
    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = text[i..].find('\n').map_or(bytes.len(), |n| i + n);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += if bytes[j] == b'\\' { 2 } else { 1 };
                }
                if !keep_strings {
                    blank(&mut out, i + 1, j.min(bytes.len()));
                }
                i = (j + 1).min(bytes.len());
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let hashes = count_hashes(bytes, i + 1);
                let quote = i + 1 + hashes;
                let closer: String = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                let end = text[quote + 1..]
                    .find(&closer)
                    .map_or(bytes.len(), |n| quote + 1 + n + closer.len());
                if !keep_strings {
                    blank(&mut out, quote + 1, end.saturating_sub(closer.len()));
                }
                i = end;
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a
                // few bytes; a lifetime never has a closing quote.
                if bytes.get(i + 1) == Some(&b'\\') {
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    if !keep_strings {
                        blank(&mut out, i + 1, j.min(bytes.len()));
                    }
                    i = (j + 1).min(bytes.len());
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    if !keep_strings {
                        blank(&mut out, i + 1, i + 2);
                    }
                    i += 3;
                } else {
                    i += 1; // lifetime
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let hashes = count_hashes(bytes, i + 1);
    bytes.get(i + 1 + hashes) == Some(&b'"')
}

fn count_hashes(bytes: &[u8], mut i: usize) -> usize {
    let start = i;
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    i - start
}

/// Byte ranges of `#[cfg(test)]`-gated items (their whole brace body),
/// computed on the strings-blanked view so braces in literals cannot
/// confuse the matcher.
fn test_regions(code: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut at = 0usize;
    let bytes = code.as_bytes();
    while let Some(hit) = code[at..].find("#[cfg(test)]") {
        let start = at + hit;
        let mut j = start + "#[cfg(test)]".len();
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] == b';' {
            at = j;
            continue;
        }
        let mut depth = 0usize;
        let mut end = bytes.len();
        for (k, &b) in bytes.iter().enumerate().skip(j) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        regions.push((start, end));
        at = end;
    }
    regions
}

fn blank_region(text: &mut String, start: usize, end: usize) {
    // SAFETY-free byte surgery: the scrubbed views are ASCII-compatible
    // at these offsets (regions start at `#` and end at `}`).
    let mut bytes = std::mem::take(text).into_bytes();
    let end = end.min(bytes.len());
    for b in &mut bytes[start..end] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
    *text = String::from_utf8_lossy(&bytes).into_owned();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let a = \"panic!(\"; // .unwrap()\nlet b = 1; /* HashMap */\n";
        let code = scrub(src, false);
        assert!(!code.contains("panic!("));
        assert!(!code.contains(".unwrap()"));
        assert!(!code.contains("HashMap"));
        assert_eq!(code.lines().count(), src.lines().count());
        let kept = scrub(src, true);
        assert!(kept.contains("panic!(\""), "strings survive when kept");
        assert!(!kept.contains(".unwrap()"), "comments never survive");
    }

    #[test]
    fn test_modules_never_fire() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let mut code = scrub(src, false);
        let regions = test_regions(&code);
        assert_eq!(regions.len(), 1);
        for (s, e) in regions {
            blank_region(&mut code, s, e);
        }
        assert!(!code.contains(".unwrap()"));
        assert!(code.contains("fn live"));
    }

    #[test]
    fn metric_names_extract_through_format() {
        let src = r#"set.push("psi", 1.0); set.push(format!("{tenant}_shed"), 2.0); v.push("not_a_metric_no_second_arg");"#;
        let code = scrub(src, false);
        let with_strings = scrub(src, true);
        let mut findings = Vec::new();
        lint_metric_names(
            "x.rs",
            src,
            &code,
            &with_strings,
            "docs mention psi and _shed",
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
        let mut findings = Vec::new();
        lint_metric_names(
            "x.rs",
            src,
            &code,
            &with_strings,
            "docs mention only psi",
            &mut findings,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].excerpt.contains("{tenant}_shed"));
    }

    #[test]
    fn lifetimes_do_not_derail_the_scrubber() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // ok\nlet c = 'x';\n";
        let code = scrub(src, false);
        assert!(code.contains("fn f<'a>"));
        assert!(!code.contains("// ok"));
    }
}
