//! End-to-end `audit` binary checks: exit code 0 on clean artifacts,
//! 2 on violations (with diagnostics on stderr), 1 on usage/I-O
//! errors — and the `gen`/`--repair` round trips.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn audit(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_audit"))
        .args(args)
        .output()
        .expect("spawn audit")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("audit exited by signal")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch dir under the build's target tree, fresh per test.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn generated(dir: &Path) -> (PathBuf, PathBuf, PathBuf) {
    let out = audit(&["gen", dir.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    (
        dir.join("fleet.snap"),
        dir.join("fleet.wal"),
        dir.join("trace.txt"),
    )
}

#[test]
fn clean_artifacts_exit_zero() {
    let dir = scratch("clean");
    let (snap, wal, trace) = generated(&dir);
    for args in [
        vec!["snapshot", snap.to_str().unwrap()],
        vec!["schedule", snap.to_str().unwrap()],
        vec!["trace", trace.to_str().unwrap()],
        vec!["wal", wal.to_str().unwrap()],
        vec![
            "wal",
            wal.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
        ],
    ] {
        let out = audit(&args);
        assert_eq!(code(&out), 0, "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn violations_exit_two_with_diagnostics() {
    let dir = scratch("dirty");
    let (snap, wal, _) = generated(&dir);
    let text = std::fs::read_to_string(&snap).unwrap();
    // Inflate a fleet counter: a conservation violation, not a parse error.
    std::fs::write(&snap, text.replacen("admitted=", "admitted=9", 1)).unwrap();
    let out = audit(&["snapshot", snap.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(
        stderr(&out).contains("counter-conservation")
            || stderr(&out).contains("snapshot-malformed"),
        "diagnostic names the class: {}",
        stderr(&out)
    );
    // Torn WAL tail: exit 2 and the torn-tail class named.
    let text = std::fs::read_to_string(&wal).unwrap();
    let cut = text.rfind("\ncommit ").unwrap() + "\ncommit ".len();
    std::fs::write(&wal, &text[..cut]).unwrap();
    let out = audit(&["wal", wal.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("torn-tail"), "{}", stderr(&out));
}

#[test]
fn wal_repair_round_trips() {
    let dir = scratch("repair");
    let (_, wal, _) = generated(&dir);
    let full = std::fs::read_to_string(&wal).unwrap();
    let cut = full.rfind("\ncommit ").unwrap() + "\ncommit ".len();
    std::fs::write(&wal, &full[..cut]).unwrap();
    let repaired = dir.join("repaired.wal");
    let out = audit(&[
        "wal",
        wal.to_str().unwrap(),
        "--repair",
        "--out",
        repaired.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    // Repaired log verifies clean; the torn original is untouched.
    let out = audit(&["wal", repaired.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert_eq!(std::fs::read_to_string(&wal).unwrap(), &full[..cut]);
}

#[test]
fn usage_and_io_errors_exit_one() {
    for args in [
        vec![],
        vec!["frobnicate"],
        vec!["snapshot"],
        vec!["snapshot", "/nonexistent/fleet.snap"],
        vec!["wal", "/nonexistent/fleet.wal", "--bogus-flag"],
    ] {
        let args: Vec<&str> = args;
        let out = audit(&args);
        assert_eq!(code(&out), 1, "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn lint_runs_clean_on_this_workspace() {
    // The workspace root is two levels up from this crate.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let out = audit(&["lint", root.to_str().unwrap()]);
    assert_eq!(
        code(&out),
        0,
        "lint must be clean in-tree: {}",
        stderr(&out)
    );
}
