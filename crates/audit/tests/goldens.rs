//! The committed goldens under `tests/golden/audit/` must verify
//! clean, fresh generator output must match them byte-for-byte (the
//! scenario is deterministic), and WAL repair must recover a valid
//! log from *every* possible torn-tail prefix.

use tagio_audit::{gen, snapshot, trace, walcheck};

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/audit")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()))
}

#[test]
fn committed_goldens_verify_clean() {
    let (snap, report) = snapshot::verify_snapshot_text(&golden("fleet.snap"));
    assert!(snap.is_some() && report.is_clean(), "fleet.snap: {report}");
    let (wal, report) = walcheck::verify_wal_text(&golden("fleet.wal"));
    assert!(wal.is_some() && report.is_clean(), "fleet.wal: {report}");
    let (events, report) = trace::verify_trace_text(&golden("trace.txt"));
    assert!(events.is_some() && report.is_clean(), "trace.txt: {report}");
    // The recovery cross-check: replaying the WAL suffix from the
    // snapshot must reproduce every committed digest.
    let report = walcheck::verify_recovery(&snap.unwrap(), &wal.unwrap());
    assert!(report.is_clean(), "recovery: {report}");
}

/// Masks the two wall-clock counters the snapshot format carries
/// (deliberately excluded from the stats digest): everything else is
/// bit-deterministic and must match the goldens byte-for-byte.
fn mask_wall_clock(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.split_inclusive('\n') {
        if !line.trim_start().starts_with("pstats ") {
            out.push_str(line);
            continue;
        }
        let masked: Vec<String> = line
            .trim_end()
            .split(' ')
            .map(|w| {
                for key in ["repair_time_us=", "admission_time_us="] {
                    if w.starts_with(key) {
                        return format!("{key}_");
                    }
                }
                w.to_string()
            })
            .collect();
        out.push_str(&masked.join(" "));
        out.push('\n');
    }
    out
}

#[test]
fn generator_reproduces_the_goldens() {
    let artifacts = gen::generate();
    assert_eq!(
        mask_wall_clock(&artifacts.snapshot_text),
        mask_wall_clock(&golden("fleet.snap")),
        "fleet.snap drifted"
    );
    assert_eq!(artifacts.wal_text, golden("fleet.wal"), "fleet.wal drifted");
    assert_eq!(
        artifacts.trace_text,
        golden("trace.txt"),
        "trace.txt drifted"
    );
}

#[test]
fn wal_repair_recovers_every_torn_prefix() {
    let text = gen::generate().wal_text;
    // Every byte-granular prefix is a possible torn tail. Repair must
    // either keep it (already commit-terminated) or truncate it to the
    // last committed epoch — and the result must verify clean.
    for cut in 0..=text.len() {
        let torn = &text[..cut];
        let (repaired, dropped) = walcheck::repair_wal_text(torn)
            .unwrap_or_else(|r| panic!("prefix of {cut} bytes not repairable: {r}"));
        assert_eq!(
            repaired.len() + dropped,
            torn.len(),
            "repair at {cut} lost bytes"
        );
        let (parsed, report) = walcheck::verify_wal_text(&repaired);
        assert!(
            parsed.is_some() && report.is_clean(),
            "repaired prefix of {cut} bytes not clean: {report}"
        );
    }
}

#[test]
fn repair_refuses_interior_corruption() {
    let text = gen::generate().wal_text;
    let corrupt = text.replacen("commit ", "commix ", 1);
    assert!(
        walcheck::repair_wal_text(&corrupt).is_err(),
        "interior corruption must not be repairable by truncation"
    );
}
