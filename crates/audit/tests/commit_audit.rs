//! The `debug-audit` commit hook: with certification installed, every
//! `apply_batch` epoch is independently verified at its commit point.

#![cfg(feature = "debug-audit")]

use tagio_audit::certificate::{certified_epochs, install_commit_certification};
use tagio_audit::gen;
use tagio_audit::ScheduleCertificate;

#[test]
fn every_epoch_is_certified_at_commit() {
    // Process-wide hook: installed once, before any batch runs. The
    // closure asserts on violation, so a dirty commit fails this test.
    install_commit_certification();
    let mut fleet = gen::fleet();
    let batches = gen::batches();
    let epochs = batches.len();
    let before = certified_epochs();
    for batch in &batches {
        let _ = fleet.apply_batch(batch);
    }
    assert_eq!(
        certified_epochs() - before,
        epochs,
        "each apply_batch must run exactly one certification"
    );
    // The certificate surface itself: certify the final state directly.
    let cert = ScheduleCertificate::certify(&fleet);
    assert!(cert.is_clean(), "{}", cert.report);
    assert_eq!(cert.epoch, epochs);
}
