//! Mutation coverage: every catalogue entry must be detected, and the
//! catalogue must cover every artifact-level violation class at least
//! once. A silent pass here means the verifier has a blind spot.

use std::collections::BTreeSet;
use tagio_audit::report::ViolationClass;
use tagio_audit::{gen, mutate, schedule, snapshot, trace, walcheck};
use tagio_core::job::JobSet;
use tagio_core::schedule::{entry_for, Schedule};
use tagio_core::task::{DeviceId, IoTask, TaskId, TaskSet};
use tagio_core::time::Duration;

/// A standalone two-period task set: the 4 ms task releases twice in
/// the 8 ms hyper-period, giving the catalogue a job with a nonzero
/// release to breach.
fn schedule_fixture() -> (Schedule, JobSet) {
    let tasks: TaskSet = vec![
        IoTask::builder(TaskId(0), DeviceId(0))
            .wcet(Duration::from_micros(500))
            .period(Duration::from_millis(4))
            .ideal_offset(Duration::from_millis(1))
            .margin(Duration::from_micros(500))
            .quality(2.0, 0.0)
            .build()
            .unwrap(),
        IoTask::builder(TaskId(1), DeviceId(0))
            .wcet(Duration::from_micros(500))
            .period(Duration::from_millis(8))
            .ideal_offset(Duration::from_millis(3))
            .margin(Duration::from_micros(500))
            .quality(3.0, 0.0)
            .build()
            .unwrap(),
    ]
    .into_iter()
    .collect();
    let jobs = JobSet::expand(&tasks);
    let mut sched = Schedule::new();
    for job in &jobs {
        sched.insert(entry_for(job, job.ideal_start()));
    }
    assert!(sched.validate(&jobs).is_ok());
    (sched, jobs)
}

fn assert_all_detected(outcomes: &[mutate::MutationOutcome]) -> BTreeSet<ViolationClass> {
    assert!(!outcomes.is_empty());
    let mut classes = BTreeSet::new();
    for o in outcomes {
        assert!(
            o.detected,
            "mutation `{}` was NOT detected (expected {})",
            o.name, o.expected
        );
        classes.insert(o.expected);
    }
    classes
}

#[test]
fn schedule_catalogue_fully_detected() {
    let (sched, jobs) = schedule_fixture();
    // The fixture must verify clean before mutation.
    assert!(schedule::verify_entries(sched.as_slice(), &jobs).is_clean());
    let classes = assert_all_detected(&mutate::mutate_schedule(&sched, &jobs));
    for class in [
        ViolationClass::Overlap,
        ViolationClass::ReleaseWindow,
        ViolationClass::DeadlineMiss,
        ViolationClass::WrongDuration,
        ViolationClass::DuplicateJob,
        ViolationClass::MissingJob,
        ViolationClass::UnknownJob,
        ViolationClass::QualityMismatch,
    ] {
        assert!(classes.contains(&class), "no mutation plants {class}");
    }
}

#[test]
fn snapshot_catalogue_fully_detected() {
    let artifacts = gen::generate();
    assert!(
        snapshot::verify_snapshot(&artifacts.snapshot).is_clean(),
        "{}",
        snapshot::verify_snapshot(&artifacts.snapshot)
    );
    let classes = assert_all_detected(&mutate::mutate_snapshot(&artifacts.snapshot));
    for class in [
        ViolationClass::Overlap,
        ViolationClass::MissingJob,
        ViolationClass::OwnershipViolation,
        ViolationClass::PartitionOrder,
        ViolationClass::CounterConservation,
    ] {
        assert!(classes.contains(&class), "no mutation plants {class}");
    }
}

#[test]
fn wal_catalogue_fully_detected() {
    let artifacts = gen::generate();
    assert!(walcheck::verify_wal_contents(&artifacts.wal).is_clean());
    assert!(
        walcheck::verify_recovery(&artifacts.snapshot, &artifacts.wal).is_clean(),
        "{}",
        walcheck::verify_recovery(&artifacts.snapshot, &artifacts.wal)
    );
    let classes = assert_all_detected(&mutate::mutate_wal(&artifacts.snapshot, &artifacts.wal));
    for class in [
        ViolationClass::EpochGap,
        ViolationClass::SeedMismatch,
        ViolationClass::DigestMismatch,
    ] {
        assert!(classes.contains(&class), "no mutation plants {class}");
    }
}

#[test]
fn wal_text_catalogue_fully_detected() {
    let artifacts = gen::generate();
    let (_, report) = walcheck::verify_wal_text(&artifacts.wal_text);
    assert!(report.is_clean(), "{report}");
    let classes = assert_all_detected(&mutate::mutate_wal_text(&artifacts.wal_text));
    assert!(classes.contains(&ViolationClass::TornTail));
    assert!(classes.contains(&ViolationClass::WalMalformed));
}

#[test]
fn trace_catalogue_fully_detected() {
    let artifacts = gen::generate();
    assert!(trace::verify_trace(&artifacts.events).is_clean());
    let classes = assert_all_detected(&mutate::mutate_trace(&artifacts.events));
    assert!(classes.contains(&ViolationClass::TimestampOrder));
    assert!(classes.contains(&ViolationClass::DuplicateArrival));
}

#[test]
fn snapshot_text_corruption_is_named() {
    let artifacts = gen::generate();
    let (parsed, report) = snapshot::verify_snapshot_text(&artifacts.snapshot_text);
    assert!(parsed.is_some() && report.is_clean(), "{report}");
    // Truncating mid-snapshot must surface as a parse failure, not a
    // clean verdict on a partial artifact.
    let cut = artifacts.snapshot_text.len() / 2;
    let (_, report) = snapshot::verify_snapshot_text(&artifacts.snapshot_text[..cut]);
    assert!(report.has(ViolationClass::SnapshotMalformed), "{report}");
}
